#include "cache/cache.hpp"

#include <gtest/gtest.h>

namespace scc::cache {
namespace {

CacheConfig tiny() {
  // 4 sets x 4 ways x 32B lines = 512 B: easy to reason about evictions.
  return CacheConfig{.size_bytes = 512, .line_bytes = 32, .ways = 4};
}

TEST(CacheConfig, SccDefaultsValidate) {
  CacheConfig l1{.size_bytes = 16 * 1024, .line_bytes = 32, .ways = 4};
  CacheConfig l2{.size_bytes = 256 * 1024, .line_bytes = 32, .ways = 4};
  EXPECT_NO_THROW(l1.validate());
  EXPECT_NO_THROW(l2.validate());
  EXPECT_EQ(l1.sets(), 128);
  EXPECT_EQ(l2.sets(), 2048);
}

TEST(CacheConfig, RejectsNonPowerOfTwo) {
  EXPECT_THROW((CacheConfig{.size_bytes = 500, .line_bytes = 32, .ways = 4}).validate(),
               std::invalid_argument);
  EXPECT_THROW((CacheConfig{.size_bytes = 512, .line_bytes = 24, .ways = 4}).validate(),
               std::invalid_argument);
  EXPECT_THROW((CacheConfig{.size_bytes = 512, .line_bytes = 32, .ways = 3}).validate(),
               std::invalid_argument);
}

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny());
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_EQ(c.stats().read_misses, 1u);
  EXPECT_EQ(c.stats().read_hits, 1u);
}

TEST(Cache, SameLineDifferentOffsetHits) {
  Cache c(tiny());
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x101f, false).hit);   // last byte of the same 32B line
  EXPECT_FALSE(c.access(0x1020, false).hit);  // next line
}

TEST(Cache, AssociativityHoldsFourWays) {
  Cache c(tiny());
  // Four addresses mapping to set 0 (stride = sets*line = 128).
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(c.access(i * 128, false).hit);
  }
  // All four still resident.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(c.access(i * 128, false).hit) << i;
  }
}

TEST(Cache, FifthWayEvicts) {
  Cache c(tiny());
  for (std::uint64_t i = 0; i < 5; ++i) c.access(i * 128, false);
  EXPECT_EQ(c.stats().evictions, 1u);
  // The newest line is resident; at least one old line was evicted.
  EXPECT_TRUE(c.contains(4 * 128));
}

TEST(Cache, PseudoLruVictimIsNotMostRecent) {
  Cache c(tiny());
  for (std::uint64_t i = 0; i < 4; ++i) c.access(i * 128, false);
  // Touch line 3 so it is MRU, then force an eviction.
  c.access(3 * 128, false);
  c.access(4 * 128, false);
  EXPECT_TRUE(c.contains(3 * 128));  // MRU must survive tree-PLRU
}

TEST(Cache, PseudoLruApproximatesLruOnSequentialFill) {
  Cache c(tiny());
  // Fill ways in order 0..3; with tree-PLRU the victim is then way 0's line.
  for (std::uint64_t i = 0; i < 4; ++i) c.access(i * 128, false);
  c.access(4 * 128, false);
  EXPECT_FALSE(c.contains(0 * 128));
}

TEST(Cache, WriteMissAllocates) {
  Cache c(tiny());
  EXPECT_FALSE(c.access(0x40, true).hit);
  EXPECT_TRUE(c.access(0x40, false).hit);
  EXPECT_EQ(c.stats().write_misses, 1u);
}

TEST(Cache, DirtyEvictionReportsVictim) {
  Cache c(tiny());
  c.access(0, true);  // dirty line in set 0
  for (std::uint64_t i = 1; i < 4; ++i) c.access(i * 128, false);
  // Evict through set 0; the dirty line is the PLRU victim.
  const AccessResult r = c.access(4 * 128, false);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(r.victim_address, 0u);
  EXPECT_EQ(c.stats().dirty_writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  Cache c(tiny());
  for (std::uint64_t i = 0; i < 5; ++i) c.access(i * 128, false);
  EXPECT_EQ(c.stats().dirty_writebacks, 0u);
}

TEST(Cache, VictimAddressReconstruction) {
  Cache c(tiny());
  const std::uint64_t addr = 3 * 128 + 64;  // set 2, some tag
  c.access(addr, true);
  // Fill set 2 (addresses with same set index): stride 128 from base 64.
  for (std::uint64_t i = 1; i < 4; ++i) c.access(64 + (3 + i) * 128, false);
  const AccessResult r = c.access(64 + 8 * 128, false);
  ASSERT_TRUE(r.evicted_dirty);
  // Victim line base = original address rounded down to the line.
  EXPECT_EQ(r.victim_address, (addr / 32) * 32);
}

TEST(Cache, FlushInvalidatesEverything) {
  Cache c(tiny());
  c.access(0x100, false);
  c.access(0x200, true);
  c.flush();
  EXPECT_FALSE(c.contains(0x100));
  EXPECT_FALSE(c.contains(0x200));
  EXPECT_EQ(c.stats().dirty_writebacks, 1u);  // the dirty line
}

TEST(Cache, MissRateComputation) {
  Cache c(tiny());
  c.access(0, false);
  c.access(0, false);
  c.access(0, false);
  c.access(0, false);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.25);
}

TEST(Cache, ResetStatsKeepsContents) {
  Cache c(tiny());
  c.access(0x1000, false);
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses(), 0u);
  EXPECT_TRUE(c.contains(0x1000));
}

TEST(Cache, StreamingMissRateMatchesLineSize) {
  // Sequential byte stream: one miss per 32-byte line.
  Cache c(CacheConfig{.size_bytes = 16 * 1024, .line_bytes = 32, .ways = 4});
  const int bytes = 8192;
  for (int i = 0; i < bytes; i += 8) c.access(static_cast<std::uint64_t>(i), false);
  EXPECT_EQ(c.stats().misses(), static_cast<std::uint64_t>(bytes / 32));
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  Cache c(tiny());  // 512 B
  // Two passes over 4 KB: pass 2 hits nothing (capacity misses).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 4096; a += 32) c.access(a, false);
  }
  EXPECT_EQ(c.stats().hits(), 0u);
}

TEST(Cache, WorkingSetSmallerThanCacheHitsOnSecondPass) {
  Cache c(CacheConfig{.size_bytes = 4096, .line_bytes = 32, .ways = 4});
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 2048; a += 32) c.access(a, false);
  }
  EXPECT_EQ(c.stats().hits(), 64u);
  EXPECT_EQ(c.stats().misses(), 64u);
}

TEST(CacheStats, Accumulation) {
  CacheStats a{.read_hits = 1, .read_misses = 2, .write_hits = 3, .write_misses = 4,
               .evictions = 5, .dirty_writebacks = 6};
  CacheStats b = a;
  b += a;
  EXPECT_EQ(b.read_hits, 2u);
  EXPECT_EQ(b.misses(), 12u);
  EXPECT_EQ(b.dirty_writebacks, 12u);
}

/// Associativity sweep: a 2^k-line working set fits exactly for every
/// power-of-two associativity.
class CacheWaysSweep : public ::testing::TestWithParam<int> {};

TEST_P(CacheWaysSweep, FullOccupancyNoEvictions) {
  const int ways = GetParam();
  Cache c(CacheConfig{.size_bytes = 2048, .line_bytes = 32, .ways = ways});
  const int lines = 2048 / 32;
  for (int i = 0; i < lines; ++i) c.access(static_cast<std::uint64_t>(i) * 32, false);
  EXPECT_EQ(c.stats().evictions, 0u);
  for (int i = 0; i < lines; ++i) {
    EXPECT_TRUE(c.contains(static_cast<std::uint64_t>(i) * 32)) << "line " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheWaysSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace scc::cache
