#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/generators.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "serve/loadgen.hpp"
#include "serve/report.hpp"
#include "serve/simulator.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"

namespace scc::obs {
namespace {

Json sample_document() {
  Json doc = Json::object();
  doc.set("zeta", 1);  // insertion order must survive, not alphabetical order
  doc.set("alpha", "text with \"quotes\" and \\ and \n newline");
  doc.set("flag", true);
  doc.set("nothing", nullptr);
  doc.set("pi", 3.25);
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(-2.5);
  Json inner = Json::object();
  inner.set("k", "v");
  arr.push_back(std::move(inner));
  doc.set("list", std::move(arr));
  return doc;
}

TEST(ObsJson, RoundTripPreservesValuesCompactAndPretty) {
  const Json doc = sample_document();
  EXPECT_EQ(Json::parse(doc.dump()), doc);
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(ObsJson, DumpPreservesInsertionOrder) {
  const std::string text = sample_document().dump();
  EXPECT_LT(text.find("\"zeta\""), text.find("\"alpha\""));
  EXPECT_LT(text.find("\"alpha\""), text.find("\"pi\""));
}

TEST(ObsJson, SetReplacesInPlaceKeepingKeyOrder) {
  Json doc = Json::object();
  doc.set("first", 1);
  doc.set("second", 2);
  doc.set("first", 10);
  ASSERT_EQ(doc.items().size(), 2u);
  EXPECT_EQ(doc.items()[0].first, "first");
  EXPECT_EQ(doc.at("first").as_int(), 10);
}

TEST(ObsJson, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::exception);
  EXPECT_THROW(Json::parse("{} trailing"), std::exception);
  EXPECT_THROW(Json::parse("{'single': 1}"), std::exception);
  EXPECT_THROW(Json::parse("[1,]"), std::exception);
}

TEST(ObsJson, TypeMismatchThrows) {
  const Json doc = sample_document();
  EXPECT_THROW(doc.at("pi").as_string(), std::exception);
  EXPECT_THROW(doc.at("alpha").as_int(), std::exception);
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(ObsReport, SkeletonCarriesTheSchemaVersion) {
  const Json doc = report_skeleton(kKindAnalysis);
  EXPECT_EQ(doc.at("schema_version").as_int(), kSchemaVersion);
  EXPECT_EQ(doc.at("kind").as_string(), "analysis");
  EXPECT_TRUE(validate_report(doc).empty());
}

TEST(ObsReport, EnvelopeProblemsAreFlagged) {
  Json doc = Json::object();
  doc.set("kind", "run");
  EXPECT_FALSE(validate_report(doc).empty());  // schema_version missing

  Json wrong = report_skeleton(kKindRun);
  wrong.set("schema_version", kSchemaVersion + 1);
  EXPECT_FALSE(validate_report(wrong).empty());
}

TEST(ObsReport, BareRunAndBenchSkeletonsAreIncomplete) {
  EXPECT_FALSE(validate_report(report_skeleton(kKindRun)).empty());
  EXPECT_FALSE(validate_report(report_skeleton(kKindBench)).empty());
}

// The real producer path: an engine run serialized by sim::run_report_json
// must validate, round-trip byte-identically, and keep its documented keys.
TEST(ObsReport, EngineRunReportRoundTripsAndValidates) {
  const auto m = gen::banded(600, 12, 0.4, 3);
  const sim::Engine engine;
  sim::RunSpec spec;
  spec.ue_count = 8;
  spec.policy = chip::MappingPolicy::kDistanceReduction;
  Recorder recorder;
  spec.recorder = &recorder;
  const auto result = engine.run(m, spec);

  const Json report = sim::run_report_json(engine, spec, result, &recorder);
  const auto problems = validate_report(report);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
  EXPECT_EQ(report.at("schema_version").as_int(), kSchemaVersion);
  EXPECT_EQ(report.at("kind").as_string(), "run");
  EXPECT_EQ(report.at("per_core").size(), 8u);
  EXPECT_TRUE(report.has("metrics"));

  const std::string text = report.dump(2);
  const Json parsed = Json::parse(text);
  EXPECT_EQ(parsed, report);
  EXPECT_EQ(parsed.dump(2), text);
  EXPECT_TRUE(validate_report(parsed).empty());
}

TEST(ObsReport, BenchTableAndClaimBuildersValidate) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  Json doc = report_skeleton(kKindBench);
  doc.set("name", "unit_test");
  doc.set("testbed_scale", 1.0);
  Json tables = Json::array();
  tables.push_back(table_json(t, "demo_stem"));
  doc.set("tables", std::move(tables));
  Json claims = Json::array();
  ClaimCheck claim{"demo claim", 1.0, 1.05, 0.1, true};
  claims.push_back(claim_json(claim));
  doc.set("claims", std::move(claims));
  doc.set("ok", true);
  const auto problems = validate_report(doc);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(ObsReport, BareServeSkeletonIsIncomplete) {
  EXPECT_FALSE(validate_report(report_skeleton(kKindServe)).empty());
}

// Real producer path for kind "serve": a small simulated serving run must
// emit a report that validates and round-trips byte-identically.
TEST(ObsReport, ServeReportRoundTripsAndValidates) {
  serve::WorkloadSpec spec;
  spec.seed = 7;
  spec.request_count = 20;
  spec.offered_rps = 500.0;
  serve::ServeConfig config;
  serve::MatrixPool pool(0.05);
  serve::Simulator simulator(config, pool);
  const auto result = simulator.run(serve::generate_workload(spec));

  const Json report =
      serve::serve_report_json(spec, config, result, &simulator.metrics());
  const auto problems = validate_report(report);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
  EXPECT_EQ(report.at("kind").as_string(), "serve");
  EXPECT_TRUE(report.at("result").at("latency").has("interactive"));
  EXPECT_TRUE(report.has("metrics"));

  const std::string text = report.dump(2);
  const Json parsed = Json::parse(text);
  EXPECT_EQ(parsed, report);
  EXPECT_EQ(parsed.dump(2), text);
}

// Forward compatibility: consumers must tolerate top-level keys added by
// later schema revisions, for every kind.
TEST(ObsReport, UnknownTopLevelKeysNeverFailValidation) {
  Json doc = report_skeleton(kKindAnalysis);
  doc.set("added_in_v7", "future");
  Json extra = Json::object();
  extra.set("nested", 1);
  doc.set("vendor_extension", std::move(extra));
  const auto problems = validate_report(doc);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

}  // namespace
}  // namespace scc::obs
