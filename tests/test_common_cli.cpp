#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace scc {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(Cli, ProgramName) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, KeyEqualsValue) {
  const auto args = make({"prog", "--cores=24"});
  EXPECT_EQ(args.get_or("cores", ""), "24");
  EXPECT_EQ(args.get_int_or("cores", 0), 24);
}

TEST(Cli, KeySpaceValue) {
  const auto args = make({"prog", "--cores", "24"});
  EXPECT_EQ(args.get_int_or("cores", 0), 24);
}

TEST(Cli, BareFlagIsTrue) {
  const auto args = make({"prog", "--fast"});
  EXPECT_TRUE(args.has("fast"));
  EXPECT_TRUE(args.get_bool_or("fast", false));
}

TEST(Cli, FlagFollowedByFlag) {
  const auto args = make({"prog", "--fast", "--cores=8"});
  EXPECT_TRUE(args.get_bool_or("fast", false));
  EXPECT_EQ(args.get_int_or("cores", 0), 8);
}

TEST(Cli, MissingKeyUsesFallback) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.get_int_or("cores", 48), 48);
  EXPECT_DOUBLE_EQ(args.get_double_or("scale", 1.5), 1.5);
  EXPECT_FALSE(args.get_bool_or("fast", false));
  EXPECT_FALSE(args.get("cores").has_value());
}

TEST(Cli, PositionalArguments) {
  const auto args = make({"prog", "input.mtx", "--cores=2", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.mtx");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

TEST(Cli, DoubleParsing) {
  const auto args = make({"prog", "--scale=0.25"});
  EXPECT_DOUBLE_EQ(args.get_double_or("scale", 1.0), 0.25);
}

TEST(Cli, BoolSpellings) {
  EXPECT_TRUE(make({"p", "--f=yes"}).get_bool_or("f", false));
  EXPECT_TRUE(make({"p", "--f=1"}).get_bool_or("f", false));
  EXPECT_TRUE(make({"p", "--f=on"}).get_bool_or("f", false));
  EXPECT_FALSE(make({"p", "--f=no"}).get_bool_or("f", true));
}

TEST(Cli, KeysEnumerated) {
  const auto args = make({"prog", "--a=1", "--b=2"});
  const auto keys = args.keys();
  EXPECT_EQ(keys.size(), 2u);
}

TEST(Cli, LastOccurrenceWins) {
  const auto args = make({"prog", "--n=1", "--n=2"});
  EXPECT_EQ(args.get_int_or("n", 0), 2);
}

TEST(OutputOptions, DefaultsToTable) {
  const auto output = parse_output_options(make({"prog"}));
  EXPECT_EQ(output.format, OutputFormat::kTable);
  EXPECT_FALSE(output.json());
  EXPECT_TRUE(output.json_path.empty());
  EXPECT_TRUE(output.trace_path.empty());
}

TEST(OutputOptions, BareJsonMeansStdout) {
  const auto output = parse_output_options(make({"prog", "--json"}));
  EXPECT_EQ(output.format, OutputFormat::kJson);
  EXPECT_TRUE(output.json());
  EXPECT_TRUE(output.json_path.empty());
}

TEST(OutputOptions, JsonWithPathAndTrace) {
  const auto output =
      parse_output_options(make({"prog", "--json=run.json", "--trace=run.jsonl"}));
  EXPECT_TRUE(output.json());
  EXPECT_EQ(output.json_path, "run.json");
  EXPECT_EQ(output.trace_path, "run.jsonl");
}

TEST(OutputOptions, BareTraceRejected) {
  EXPECT_THROW(parse_output_options(make({"prog", "--trace"})), std::invalid_argument);
}

TEST(SeedOption, FallbackWhenAbsent) {
  EXPECT_EQ(seed_option(make({"prog"}), 0x5cc), 0x5ccu);
}

TEST(SeedOption, DecimalAndHexAccepted) {
  EXPECT_EQ(seed_option(make({"prog", "--seed=42"}), 0), 42u);
  EXPECT_EQ(seed_option(make({"prog", "--seed=0xBEEF"}), 0), 0xbeefu);
  EXPECT_EQ(seed_option(make({"prog", "--seed", "7"}), 0), 7u);
}

TEST(SeedOption, BadSeedThrows) {
  EXPECT_THROW(seed_option(make({"prog", "--seed=banana"}), 0), std::invalid_argument);
  EXPECT_THROW(seed_option(make({"prog", "--seed="}), 0), std::invalid_argument);
}

}  // namespace
}  // namespace scc
