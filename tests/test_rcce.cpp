#include "rcce/rcce.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "fault/fault.hpp"

namespace scc::rcce {
namespace {

TEST(Rcce, RunsAllUes) {
  std::atomic<int> count{0};
  run(8, [&](Comm&) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(Rcce, RanksAreDistinctAndComplete) {
  std::vector<std::atomic<int>> seen(16);
  run(16, [&](Comm& comm) { ++seen[static_cast<std::size_t>(comm.rank())]; });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Rcce, SizeVisibleToBodies) {
  run(5, [&](Comm& comm) { EXPECT_EQ(comm.size(), 5); });
}

TEST(Rcce, RejectsBadUeCount) {
  EXPECT_THROW(run(0, [](Comm&) {}), std::invalid_argument);
  EXPECT_THROW(run(49, [](Comm&) {}), std::invalid_argument);
}

TEST(Rcce, StandardMappingCores) {
  const RunReport report = run(4, [](Comm&) {});
  EXPECT_EQ(report.cores, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Rcce, DistanceReductionMappingCores) {
  RuntimeOptions opts;
  opts.mapping = chip::MappingPolicy::kDistanceReduction;
  const RunReport report = run(4, [](Comm&) {}, opts);
  EXPECT_EQ(report.cores, (std::vector<int>{0, 1, 10, 11}));
}

TEST(Rcce, ExplicitCoreTable) {
  RuntimeOptions opts;
  opts.explicit_cores = {7, 3, 40};
  std::vector<std::atomic<int>> core_of_rank(3);
  const RunReport report = run(3, [&](Comm& comm) {
    core_of_rank[static_cast<std::size_t>(comm.rank())] = comm.core();
  }, opts);
  EXPECT_EQ(core_of_rank[0].load(), 7);
  EXPECT_EQ(core_of_rank[1].load(), 3);
  EXPECT_EQ(core_of_rank[2].load(), 40);
  EXPECT_EQ(report.cores, opts.explicit_cores);
}

TEST(Rcce, ExplicitCoreTableValidated) {
  RuntimeOptions opts;
  opts.explicit_cores = {0, 1};
  EXPECT_THROW(run(3, [](Comm&) {}, opts), std::invalid_argument);
  opts.explicit_cores = {0, 99};
  EXPECT_THROW(run(2, [](Comm&) {}, opts), std::invalid_argument);
}

TEST(Rcce, SendRecvSmallMessage) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int payload = 12345;
      comm.send(&payload, sizeof payload, 1);
    } else {
      int received = 0;
      comm.recv(&received, sizeof received, 0);
      EXPECT_EQ(received, 12345);
    }
  });
}

TEST(Rcce, SendRecvLargerThanMpbIsChunked) {
  // 100 KB through an 8 KB MPB region: must chunk and still arrive intact.
  const std::size_t n = 100 * 1024 / sizeof(double);
  run(2, [n](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data(n);
      std::iota(data.begin(), data.end(), 0.0);
      comm.send(data.data(), data.size() * sizeof(double), 1);
    } else {
      std::vector<double> data(n, -1.0);
      comm.recv(data.data(), data.size() * sizeof(double), 0);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_DOUBLE_EQ(data[i], static_cast<double>(i)) << i;
      }
    }
  });
}

TEST(Rcce, SendSizeMismatchFailsCleanly) {
  // The mismatch is a rendezvous-level protocol error naming both parties
  // and both sizes, not a plain argument error.
  try {
    run(2, [](Comm& comm) {
      std::int32_t small = 0;
      std::int64_t large = 0;
      if (comm.rank() == 0) {
        comm.send(&small, sizeof small, 1);
      } else {
        comm.recv(&large, sizeof large, 0);
      }
    });
    FAIL() << "expected MessageSizeMismatchError";
  } catch (const MessageSizeMismatchError& e) {
    EXPECT_EQ(e.source(), 0);
    EXPECT_EQ(e.dest(), 1);
    EXPECT_EQ(e.send_bytes(), sizeof(std::int32_t));
    EXPECT_EQ(e.recv_bytes(), sizeof(std::int64_t));
  }
}

TEST(Rcce, SendToSelfRejected) {
  EXPECT_THROW(run(2, [](Comm& comm) {
    int x = 0;
    comm.send(&x, sizeof x, comm.rank());
  }), std::invalid_argument);
}

TEST(Rcce, ZeroByteMessageCompletes) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(nullptr, 0, 1);
    } else {
      comm.recv(nullptr, 0, 0);
    }
  });
}

TEST(Rcce, BarrierOrdersPhases) {
  std::atomic<int> phase1{0};
  bool saw_all = false;
  run(8, [&](Comm& comm) {
    ++phase1;
    comm.barrier();
    if (comm.rank() == 0) saw_all = phase1.load() == 8;
    comm.barrier();
  });
  EXPECT_TRUE(saw_all);
}

TEST(Rcce, RepeatedBarriers) {
  run(6, [](Comm& comm) {
    for (int i = 0; i < 25; ++i) comm.barrier();
  });
}

TEST(Rcce, PutGetThroughMpb) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const double value = 2.5;
      comm.put(&value, sizeof value, 1, 128);
      comm.flag_set(0, true, 1);
    } else {
      comm.flag_wait(0, true);
      double value = 0.0;
      comm.get(&value, sizeof value, comm.rank(), 128);
      EXPECT_DOUBLE_EQ(value, 2.5);
    }
  });
}

TEST(Rcce, MpbBoundsChecked) {
  EXPECT_THROW(run(1, [](Comm& comm) {
    char buf[16] = {};
    comm.put(buf, sizeof buf, 0, 8192 - 8);  // crosses the region end
  }), std::invalid_argument);
}

TEST(Rcce, FlagIdValidated) {
  EXPECT_THROW(run(1, [](Comm& comm) { comm.flag_set(64, true, 0); }),
               std::invalid_argument);
}

TEST(Rcce, BcastDeliversToAll) {
  run(8, [](Comm& comm) {
    double value = comm.rank() == 3 ? 9.75 : 0.0;
    comm.bcast(&value, sizeof value, 3);
    EXPECT_DOUBLE_EQ(value, 9.75);
  });
}

TEST(Rcce, ReduceSumAtRoot) {
  run(8, [](Comm& comm) {
    const double contribution = static_cast<double>(comm.rank() + 1);
    const double total = comm.reduce_sum(contribution, 0);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(total, 36.0);  // 1+..+8
    }
  });
}

TEST(Rcce, AllreduceSumEverywhere) {
  run(6, [](Comm& comm) {
    const double total = comm.allreduce_sum(1.0);
    EXPECT_DOUBLE_EQ(total, 6.0);
  });
}

TEST(Rcce, AllreduceMaxEverywhere) {
  run(7, [](Comm& comm) {
    const double max = comm.allreduce_max(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(max, 6.0);
  });
}

TEST(Rcce, SingleUeCollectivesDegenerate) {
  run(1, [](Comm& comm) {
    double v = 5.0;
    comm.bcast(&v, sizeof v, 0);
    EXPECT_DOUBLE_EQ(comm.reduce_sum(v, 0), 5.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(v), 5.0);
    comm.barrier();
  });
}

TEST(Rcce, WtimeMonotone) {
  run(1, [](Comm& comm) {
    const double a = comm.wtime();
    const double b = comm.wtime();
    EXPECT_GE(b, a);
  });
}

TEST(Rcce, PowerApiRecordsTileFrequency) {
  RuntimeOptions opts;
  const RunReport report = run(2, [](Comm& comm) {
    if (comm.rank() == 0) comm.set_tile_core_mhz(800);
    comm.barrier();
  }, opts);
  // Ranks 0/1 share tile 0 under the standard mapping.
  EXPECT_EQ(report.frequencies.tile_core_mhz(0), 800);
  EXPECT_EQ(report.frequencies.tile_core_mhz(1), 533);
}

TEST(Rcce, BodyExceptionPropagatesAndUnblocksPeers) {
  // UE 1 throws while UE 0 waits on a barrier; the runtime must poison the
  // barrier and rethrow the original error rather than deadlock.
  EXPECT_THROW(run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      throw std::runtime_error("deliberate failure");
    }
    comm.barrier();
  }), std::runtime_error);
}

TEST(Rcce, BodyExceptionUnblocksPeerMidRecv) {
  EXPECT_THROW(run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      throw std::runtime_error("deliberate failure");
    }
    int value = 0;
    comm.recv(&value, sizeof value, 1);
  }), std::runtime_error);
}

TEST(Rcce, BodyExceptionUnblocksPeerMidFlagWait) {
  EXPECT_THROW(run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      throw std::runtime_error("deliberate failure");
    }
    comm.flag_wait(0, true);
  }), std::runtime_error);
}

rcce::RuntimeOptions with_plan(fault::Plan plan, double timeout = 5.0) {
  RuntimeOptions opts;
  opts.watchdog_timeout_seconds = timeout;
  opts.injector = std::make_shared<fault::Injector>(std::move(plan));
  return opts;
}

TEST(RcceResilience, EmptyPlanLeavesRunUntouched) {
  const RunReport report = run(4, [](Comm& comm) {
    double v = comm.rank() == 0 ? 3.5 : 0.0;
    comm.bcast(&v, sizeof v, 0);
    EXPECT_DOUBLE_EQ(v, 3.5);
    comm.barrier();
  }, with_plan(fault::Plan{}));
  EXPECT_TRUE(report.fault_log.empty());
  EXPECT_TRUE(report.dead_ues.empty());
}

TEST(RcceResilience, KilledUeIsRecordedAndBarrierRebalances) {
  fault::Plan plan;
  plan.kills.push_back({1, 0});  // UE 1 dies entering its first op
  const RunReport report = run(3, [](Comm& comm) {
    comm.barrier();  // must release with only the survivors
    if (comm.rank() != 1) {
      EXPECT_TRUE(comm.ue_alive(comm.rank()));
      EXPECT_FALSE(comm.ue_alive(1));
    }
  }, with_plan(plan));
  EXPECT_EQ(report.dead_ues, (std::vector<int>{1}));
  EXPECT_EQ(fault::count(report.fault_log, fault::EventType::kKill), 1u);
}

TEST(RcceResilience, SendToDeadPeerRaisesPeerDead) {
  fault::Plan plan;
  plan.kills.push_back({1, 0});
  try {
    run(2, [](Comm& comm) {
      if (comm.rank() == 0) {
        int value = 7;
        comm.send(&value, sizeof value, 1);
      } else {
        comm.barrier();  // killed here
      }
    }, with_plan(plan));
    FAIL() << "expected PeerDeadError";
  } catch (const PeerDeadError& e) {
    EXPECT_EQ(e.rank(), 0);
    EXPECT_EQ(e.peer(), 1);
  }
}

TEST(RcceResilience, DroppedFlagSetTimesOutTheWaiter) {
  fault::Plan plan;
  plan.flag_drops.push_back({0, 0});  // rank 0's first op is the flag_set
  try {
    run(2, [](Comm& comm) {
      if (comm.rank() == 0) {
        comm.flag_set(3, true, 1);
      } else {
        comm.flag_wait(3, true);
      }
    }, with_plan(plan, 0.2));
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_EQ(e.op(), "flag_wait");
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.flag_id(), 3);
    EXPECT_DOUBLE_EQ(e.seconds(), 0.2);
  }
}

TEST(RcceResilience, DroppedMessageTimesOutTheReceiver) {
  fault::Plan plan;
  plan.transfers.push_back({0, 1, 0, fault::TransferMode::kDrop, 1});
  try {
    run(2, [](Comm& comm) {
      int value = 11;
      if (comm.rank() == 0) {
        comm.send(&value, sizeof value, 1);
      } else {
        comm.recv(&value, sizeof value, 0);
      }
    }, with_plan(plan, 0.2));
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_EQ(e.op(), "recv");
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.peer(), 0);
  }
}

TEST(RcceResilience, TransientTransferRetriesThenDelivers) {
  fault::Plan plan;
  plan.transfers.push_back({0, 1, 0, fault::TransferMode::kTransient, 2});
  int received = 0;
  const RunReport report = run(2, [&](Comm& comm) {
    const int value = 99;
    if (comm.rank() == 0) {
      comm.send(&value, sizeof value, 1);
    } else {
      comm.recv(&received, sizeof received, 0);
    }
  }, with_plan(plan));
  EXPECT_EQ(received, 99);
  EXPECT_EQ(fault::count(report.fault_log, fault::EventType::kRetry), 2u);
}

TEST(RcceResilience, TransientTransferExhaustsRetryBudget) {
  fault::Plan plan;
  plan.transfers.push_back({0, 1, 0, fault::TransferMode::kTransient, 10});
  RuntimeOptions opts = with_plan(plan, 1.0);
  opts.max_transfer_retries = 2;  // fewer than the 10 injected failures
  EXPECT_THROW(run(2, [](Comm& comm) {
    int value = 0;
    if (comm.rank() == 0) {
      comm.send(&value, sizeof value, 1);
    } else {
      comm.recv(&value, sizeof value, 0);
    }
  }, opts), SimulationError);
}

TEST(RcceResilience, CorruptedTransferFlipsPayloadAndIsLogged) {
  fault::Plan plan;
  plan.transfers.push_back({0, 1, 0, fault::TransferMode::kCorrupt, 1});
  std::array<std::uint8_t, 4> received{};
  const RunReport report = run(2, [&](Comm& comm) {
    const std::array<std::uint8_t, 4> sent = {0x10, 0x20, 0x30, 0x40};
    if (comm.rank() == 0) {
      comm.send(sent.data(), sent.size(), 1);
    } else {
      comm.recv(received.data(), received.size(), 0);
    }
  }, with_plan(plan));
  EXPECT_EQ(received, (std::array<std::uint8_t, 4>{0xef, 0xdf, 0xcf, 0xbf}));
  EXPECT_EQ(fault::count(report.fault_log, fault::EventType::kTransferCorrupt), 1u);
}

TEST(RcceResilience, StragglerDelayIsLoggedButHarmless) {
  fault::Plan plan;
  plan.delays.push_back({1, 0, 0.01});
  const RunReport report = run(2, [](Comm& comm) {
    comm.barrier();
  }, with_plan(plan));
  EXPECT_EQ(fault::count(report.fault_log, fault::EventType::kDelay), 1u);
  EXPECT_TRUE(report.dead_ues.empty());
}

TEST(RcceResilience, InjectedArenaExhaustionThrows) {
  fault::Plan plan;
  plan.arena_exhaust_rounds.push_back(1);  // second collective round fails
  EXPECT_THROW(run(1, [](Comm& comm) {
    comm.shmalloc(64);   // round 0: fine
    comm.shmalloc(64);   // round 1: injected exhaustion
  }, with_plan(plan)), SimulationError);
}

TEST(RcceResilience, MismatchedShmallocNamesTheDisagreeingRanks) {
  try {
    run(2, [](Comm& comm) {
      comm.shmalloc(comm.rank() == 0 ? 64u : 128u);
      comm.barrier();
    });
    FAIL() << "expected a collective-mismatch error";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("UE 0"), std::string::npos) << what;
    EXPECT_NE(what.find("UE 1"), std::string::npos) << what;
    EXPECT_NE(what.find("64"), std::string::npos) << what;
    EXPECT_NE(what.find("128"), std::string::npos) << what;
  }
}

TEST(RcceResilience, StochasticFaultLogIsDeterministicPerSeed) {
  const auto run_once = [](std::uint64_t seed) {
    fault::Plan plan;
    plan.seed = seed;
    plan.transient_rate = 0.3;
    plan.delay_rate = 0.2;
    plan.delay_seconds = 0.0001;
    return run(4, [](Comm& comm) {
      for (int round = 0; round < 5; ++round) {
        double v = comm.rank() == 0 ? 1.0 : 0.0;
        comm.bcast(&v, sizeof v, 0);
        comm.barrier();
      }
    }, with_plan(plan)).fault_log;
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());  // the rates are high enough to fire at least once
  EXPECT_NE(a, run_once(43));
}

TEST(RcceShm, CollectiveAllocationSameOffsetEverywhere) {
  std::vector<std::atomic<std::size_t>> offsets(6);
  run(6, [&](Comm& comm) {
    const std::size_t a = comm.shmalloc(128);
    const std::size_t b = comm.shmalloc(64);
    EXPECT_EQ(b, a + 128);
    offsets[static_cast<std::size_t>(comm.rank())] = a;
  });
  for (auto& o : offsets) EXPECT_EQ(o.load(), offsets[0].load());
}

TEST(RcceShm, FlushAndInvalidatePropagateData) {
  run(3, [](Comm& comm) {
    const std::size_t slot = comm.shmalloc(sizeof(double));
    if (comm.rank() == 0) {
      const double value = 6.5;
      comm.shm_write(slot, &value, sizeof value);
      comm.shm_flush();
    }
    comm.barrier();
    if (comm.rank() != 0) {
      comm.shm_invalidate();
      double value = 0.0;
      comm.shm_read(slot, &value, sizeof value);
      EXPECT_DOUBLE_EQ(value, 6.5);
    }
  });
}

TEST(RcceShm, StaleReadWithoutInvalidate) {
  // The coherence-free semantics: a peer that skips shm_invalidate keeps
  // seeing its cached (zero-initialized) view even after the writer flushed.
  run(2, [](Comm& comm) {
    const std::size_t slot = comm.shmalloc(sizeof(int));
    // Both UEs touch the line first so it is in their "cache".
    int dummy = 0;
    comm.shm_read(slot, &dummy, sizeof dummy);
    if (comm.rank() == 0) {
      const int value = 42;
      comm.shm_write(slot, &value, sizeof value);
      comm.shm_flush();
    }
    comm.barrier();
    if (comm.rank() == 1) {
      int stale = -1;
      comm.shm_read(slot, &stale, sizeof stale);
      EXPECT_EQ(stale, 0);  // still the old view
      comm.shm_invalidate();
      int fresh = -1;
      comm.shm_read(slot, &fresh, sizeof fresh);
      EXPECT_EQ(fresh, 42);
    }
  });
}

TEST(RcceShm, UnflushedWritesStayPrivate) {
  run(2, [](Comm& comm) {
    const std::size_t slot = comm.shmalloc(sizeof(int));
    if (comm.rank() == 0) {
      const int value = 7;
      comm.shm_write(slot, &value, sizeof value);
      // no flush
    }
    comm.barrier();
    if (comm.rank() == 1) {
      comm.shm_invalidate();
      int seen = -1;
      comm.shm_read(slot, &seen, sizeof seen);
      EXPECT_EQ(seen, 0);
    }
  });
}

TEST(RcceShm, InvalidatePreservesOwnDirtyWrites) {
  run(1, [](Comm& comm) {
    const std::size_t slot = comm.shmalloc(sizeof(int));
    const int value = 9;
    comm.shm_write(slot, &value, sizeof value);
    comm.shm_invalidate();  // must not destroy the unflushed write
    int seen = 0;
    comm.shm_read(slot, &seen, sizeof seen);
    EXPECT_EQ(seen, 9);
  });
}

TEST(RcceShm, ArenaExhaustionThrows) {
  RuntimeOptions opts;
  opts.shared_memory_bytes = 256;
  EXPECT_THROW(run(1, [](Comm& comm) { comm.shmalloc(512); }, opts), std::invalid_argument);
}

TEST(RcceShm, MismatchedCollectiveAllocationThrows) {
  EXPECT_THROW(run(2, [](Comm& comm) {
    comm.shmalloc(comm.rank() == 0 ? 64u : 128u);
    comm.barrier();
  }), std::invalid_argument);
}

TEST(RcceShm, BoundsChecked) {
  RuntimeOptions opts;
  opts.shared_memory_bytes = 128;
  EXPECT_THROW(run(1, [](Comm& comm) {
    char buf[64] = {};
    comm.shm_write(100, buf, sizeof buf);
  }, opts), std::invalid_argument);
}

TEST(RcceStress, RandomSizedMessagesAllArrive) {
  // Ring exchange of pseudo-random-sized payloads, several rounds; checks
  // both chunked transport and ordering under concurrency.
  const int ues = 8;
  run(ues, [&](Comm& comm) {
    std::uint64_t state = 77;
    for (int round = 0; round < 10; ++round) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::size_t bytes = 1 + static_cast<std::size_t>(state % 40000);
      std::vector<std::uint8_t> out(bytes);
      for (std::size_t i = 0; i < bytes; ++i) {
        out[i] = static_cast<std::uint8_t>((i * 31 + static_cast<std::size_t>(round)) & 0xff);
      }
      const int next = (comm.rank() + 1) % comm.size();
      const int prev = (comm.rank() + comm.size() - 1) % comm.size();
      std::vector<std::uint8_t> in(bytes, 0);
      if (comm.rank() % 2 == 0) {
        comm.send(out.data(), bytes, next);
        comm.recv(in.data(), bytes, prev);
      } else {
        comm.recv(in.data(), bytes, prev);
        comm.send(out.data(), bytes, next);
      }
      ASSERT_EQ(in, out) << "round " << round;
      comm.barrier();
    }
  });
}

TEST(Rcce, HopsToMemoryVisible) {
  RuntimeOptions opts;
  opts.mapping = chip::MappingPolicy::kDistanceReduction;
  run(4, [](Comm& comm) { EXPECT_EQ(comm.hops_to_memory(), 0); }, opts);
}

}  // namespace
}  // namespace scc::rcce
