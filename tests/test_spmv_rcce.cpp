#include "spmv/rcce_spmv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fault/fault.hpp"
#include "gen/generators.hpp"

namespace scc::spmv {
namespace {

std::vector<real_t> test_vector(index_t n) {
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::cos(static_cast<double>(i) * 0.11) + 1.5;
  }
  return x;
}

void expect_matches_reference(const sparse::CsrMatrix& m, int ues,
                              const rcce::RuntimeOptions& opts = {}) {
  const auto x = test_vector(m.cols());
  const auto ref = sparse::dense_reference_spmv(m, x);
  const RcceSpmvResult result = rcce_spmv(m, x, ues, opts);
  ASSERT_EQ(result.y.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(result.y[i], ref[i], 1e-9 * (1.0 + std::abs(ref[i]))) << "row " << i;
  }
}

TEST(RcceSpmv, SingleUe) {
  expect_matches_reference(gen::banded(300, 5, 0.5, 1), 1);
}

TEST(RcceSpmv, MatchesReferenceOnIrregularMatrix) {
  expect_matches_reference(gen::power_law(1000, 8, 1.1, 2), 6);
}

TEST(RcceSpmv, MatchesReferenceOnCircuitMatrix) {
  expect_matches_reference(gen::circuit(2000, 2.0, 0.4, 3), 8);
}

TEST(RcceSpmv, FullChipUeCount) {
  expect_matches_reference(gen::random_uniform(3000, 6, 4), 48);
}

TEST(RcceSpmv, MoreUesThanRows) {
  expect_matches_reference(gen::stencil_2d(5, 5), 37);
}

TEST(RcceSpmv, DistanceReductionMappingGivesSameResult) {
  rcce::RuntimeOptions opts;
  opts.mapping = chip::MappingPolicy::kDistanceReduction;
  expect_matches_reference(gen::banded(1200, 10, 0.4, 5), 12, opts);
}

TEST(RcceSpmv, ReportsMappingCores) {
  const auto m = gen::banded(500, 5, 0.5, 6);
  const auto x = test_vector(m.cols());
  rcce::RuntimeOptions opts;
  opts.mapping = chip::MappingPolicy::kDistanceReduction;
  const auto result = rcce_spmv(m, x, 4, opts);
  EXPECT_EQ(result.report.cores, (std::vector<int>{0, 1, 10, 11}));
}

TEST(RcceSpmv, KernelTimeRecorded) {
  const auto m = gen::banded(2000, 10, 0.5, 7);
  const auto x = test_vector(m.cols());
  const auto result = rcce_spmv(m, x, 4, {}, /*repetitions=*/3);
  EXPECT_GT(result.kernel_seconds, 0.0);
}

TEST(RcceSpmv, RepetitionsValidated) {
  const auto m = gen::stencil_2d(4, 4);
  const auto x = test_vector(m.cols());
  EXPECT_THROW(rcce_spmv(m, x, 2, {}, 0), std::invalid_argument);
}

TEST(RcceSpmv, XSizeValidated) {
  const auto m = gen::stencil_2d(4, 4);
  const std::vector<real_t> x(3, 1.0);
  EXPECT_THROW(rcce_spmv(m, x, 2), std::invalid_argument);
}

rcce::RuntimeOptions resilient_options(fault::Plan plan) {
  rcce::RuntimeOptions opts;
  opts.watchdog_timeout_seconds = 5.0;
  opts.injector = std::make_shared<fault::Injector>(std::move(plan));
  return opts;
}

TEST(RcceSpmvResilience, EmptyPlanGivesIdenticalResultToPlainRun) {
  const auto m = gen::banded(1500, 12, 0.4, 9);
  const auto x = test_vector(m.cols());
  const auto plain = rcce_spmv(m, x, 6);
  const auto resilient = rcce_spmv(m, x, 6, resilient_options(fault::Plan{}));
  EXPECT_EQ(plain.y, resilient.y);  // byte-identical, not merely close
  EXPECT_TRUE(resilient.report.fault_log.empty());
  EXPECT_TRUE(resilient.report.dead_ues.empty());
}

TEST(RcceSpmvResilience, SurvivesOneUeKilledMidRun) {
  fault::Plan plan;
  plan.kills.push_back({2, 4});  // UE 2 dies partway through its op sequence
  const auto m = gen::banded(2000, 14, 0.4, 10);
  const auto x = test_vector(m.cols());
  const auto result = rcce_spmv(m, x, 6, resilient_options(plan));
  const auto ref = sparse::dense_reference_spmv(m, x);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(result.y[i], ref[i], 1e-9 * (1.0 + std::abs(ref[i]))) << "row " << i;
  }
  EXPECT_EQ(result.report.dead_ues, (std::vector<int>{2}));
  EXPECT_GE(fault::count(result.report.fault_log, fault::EventType::kRepartition), 1u);
}

TEST(RcceSpmvResilience, SurvivesTwoUesKilledMidRun) {
  fault::Plan plan;
  plan.kills.push_back({1, 3});
  plan.kills.push_back({4, 5});
  const auto m = gen::power_law(1800, 9, 1.2, 11);
  const auto x = test_vector(m.cols());
  const auto result = rcce_spmv(m, x, 6, resilient_options(plan));
  const auto ref = sparse::dense_reference_spmv(m, x);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(result.y[i], ref[i], 1e-9 * (1.0 + std::abs(ref[i]))) << "row " << i;
  }
  EXPECT_EQ(result.report.dead_ues, (std::vector<int>{1, 4}));
}

TEST(RcceSpmvResilience, SurvivesUeKilledBeforeDistribution) {
  fault::Plan plan;
  plan.kills.push_back({3, 0});  // dead before it ever receives its block
  const auto m = gen::banded(1200, 10, 0.5, 12);
  const auto x = test_vector(m.cols());
  const auto result = rcce_spmv(m, x, 5, resilient_options(plan));
  const auto ref = sparse::dense_reference_spmv(m, x);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(result.y[i], ref[i], 1e-9 * (1.0 + std::abs(ref[i]))) << "row " << i;
  }
  EXPECT_EQ(result.report.dead_ues, (std::vector<int>{3}));
}

TEST(RcceSpmvResilience, TransientFaultsRetryWithoutChangingTheProduct) {
  fault::Plan plan;
  plan.seed = 99;
  plan.transient_rate = 0.15;
  const auto m = gen::banded(1500, 12, 0.4, 13);
  const auto x = test_vector(m.cols());
  const auto result = rcce_spmv(m, x, 6, resilient_options(plan));
  const auto ref = sparse::dense_reference_spmv(m, x);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(result.y[i], ref[i], 1e-9 * (1.0 + std::abs(ref[i]))) << "row " << i;
  }
  EXPECT_GE(fault::count(result.report.fault_log, fault::EventType::kRetry), 1u);
}

TEST(RcceSpmvResilience, FaultLogIsDeterministicPerSeed) {
  const auto m = gen::banded(1600, 12, 0.4, 14);
  const auto x = test_vector(m.cols());
  const auto run_once = [&] {
    fault::Plan plan;
    plan.seed = 7;
    plan.kills.push_back({2, 4});
    plan.transient_rate = 0.1;
    return rcce_spmv(m, x, 6, resilient_options(plan)).report;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.fault_log, b.fault_log);
  EXPECT_EQ(a.dead_ues, b.dead_ues);
  EXPECT_FALSE(a.fault_log.empty());
}

TEST(RcceSpmvCorruption, CorruptedTransferPerturbsTheDistributedProduct) {
  // End-to-end SDC through the transport: flip the payload of channel
  // 0 -> 1's sixth message (the x broadcast; the slice protocol sends
  // header, nnz, ptr, col, val, then x). The run must complete -- corruption
  // is silent, not fatal -- but the delivered product must be wrong, which
  // is exactly the escape the ABFT layer exists to catch.
  fault::Plan plan;
  plan.transfers.push_back({0, 1, 5, fault::TransferMode::kCorrupt, 0});
  const auto m = gen::banded(1200, 10, 0.5, 21);
  const auto x = test_vector(m.cols());
  const auto result = rcce_spmv(m, x, 4, resilient_options(plan));
  EXPECT_EQ(fault::count(result.report.fault_log, fault::EventType::kTransferCorrupt), 1u);
  const auto ref = sparse::dense_reference_spmv(m, x);
  double max_error = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    max_error = std::max(max_error, std::abs(result.y[i] - ref[i]));
  }
  EXPECT_GT(max_error, 1e-6) << "corrupted x broadcast left the product intact";
}

TEST(RcceSpmvCorruption, MemoryCorruptionPerturbsTheProductInEveryRegion) {
  // A planned bit flip in each array a rank touches: the event must land in
  // the fault log and the delivered product must differ from the reference
  // (bit 52 sits in the exponent for doubles and folds to a large index
  // perturbation for col/ptr), while the process itself stays alive --
  // corrupted indices are clamped, never chased out of bounds. Element 300
  // falls inside rank 1's row slice / column band in every region (indices
  // wrap modulo the region size).
  const auto m = gen::banded(900, 9, 0.5, 23);
  const auto x = test_vector(m.cols());
  const auto ref = sparse::dense_reference_spmv(m, x);
  for (const fault::MemRegion region :
       {fault::MemRegion::kVal, fault::MemRegion::kCol, fault::MemRegion::kPtr,
        fault::MemRegion::kX, fault::MemRegion::kPartial}) {
    fault::Plan plan;
    plan.mem_corruptions.push_back({1, region, 300, 52});
    const auto result = rcce_spmv(m, x, 4, resilient_options(plan));
    EXPECT_EQ(fault::count(result.report.fault_log, fault::EventType::kMemCorrupt), 1u)
        << fault::to_string(region);
    double max_error = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      max_error = std::max(max_error, std::abs(result.y[i] - ref[i]));
    }
    EXPECT_GT(max_error, 1e-9) << "flip in " << fault::to_string(region)
                               << " left the product intact";
  }
}

TEST(RcceSpmvCorruption, StochasticMemoryCorruptionReplaysPerSeed) {
  fault::Plan plan;
  plan.seed = 44;
  plan.mem_corrupt_rate = 0.5;
  const auto m = gen::banded(800, 8, 0.5, 24);
  const auto x = test_vector(m.cols());
  const auto a = rcce_spmv(m, x, 4, resilient_options(plan));
  const auto b = rcce_spmv(m, x, 4, resilient_options(plan));
  EXPECT_GE(fault::count(a.report.fault_log, fault::EventType::kMemCorrupt), 1u);
  EXPECT_EQ(a.report.fault_log, b.report.fault_log);
  EXPECT_EQ(a.y, b.y);
}

/// Sweep: result equals the serial reference for every UE count tried.
class RcceSpmvUeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RcceSpmvUeSweep, MatchesReference) {
  expect_matches_reference(gen::power_law(1500, 7, 1.2, 8), GetParam());
}

INSTANTIATE_TEST_SUITE_P(UeCounts, RcceSpmvUeSweep, ::testing::Values(1, 2, 3, 5, 8, 16, 24));

}  // namespace
}  // namespace scc::spmv
