#include "spmv/rcce_spmv.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"

namespace scc::spmv {
namespace {

std::vector<real_t> test_vector(index_t n) {
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::cos(static_cast<double>(i) * 0.11) + 1.5;
  }
  return x;
}

void expect_matches_reference(const sparse::CsrMatrix& m, int ues,
                              const rcce::RuntimeOptions& opts = {}) {
  const auto x = test_vector(m.cols());
  const auto ref = sparse::dense_reference_spmv(m, x);
  const RcceSpmvResult result = rcce_spmv(m, x, ues, opts);
  ASSERT_EQ(result.y.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(result.y[i], ref[i], 1e-9 * (1.0 + std::abs(ref[i]))) << "row " << i;
  }
}

TEST(RcceSpmv, SingleUe) {
  expect_matches_reference(gen::banded(300, 5, 0.5, 1), 1);
}

TEST(RcceSpmv, MatchesReferenceOnIrregularMatrix) {
  expect_matches_reference(gen::power_law(1000, 8, 1.1, 2), 6);
}

TEST(RcceSpmv, MatchesReferenceOnCircuitMatrix) {
  expect_matches_reference(gen::circuit(2000, 2.0, 0.4, 3), 8);
}

TEST(RcceSpmv, FullChipUeCount) {
  expect_matches_reference(gen::random_uniform(3000, 6, 4), 48);
}

TEST(RcceSpmv, MoreUesThanRows) {
  expect_matches_reference(gen::stencil_2d(5, 5), 37);
}

TEST(RcceSpmv, DistanceReductionMappingGivesSameResult) {
  rcce::RuntimeOptions opts;
  opts.mapping = chip::MappingPolicy::kDistanceReduction;
  expect_matches_reference(gen::banded(1200, 10, 0.4, 5), 12, opts);
}

TEST(RcceSpmv, ReportsMappingCores) {
  const auto m = gen::banded(500, 5, 0.5, 6);
  const auto x = test_vector(m.cols());
  rcce::RuntimeOptions opts;
  opts.mapping = chip::MappingPolicy::kDistanceReduction;
  const auto result = rcce_spmv(m, x, 4, opts);
  EXPECT_EQ(result.report.cores, (std::vector<int>{0, 1, 10, 11}));
}

TEST(RcceSpmv, KernelTimeRecorded) {
  const auto m = gen::banded(2000, 10, 0.5, 7);
  const auto x = test_vector(m.cols());
  const auto result = rcce_spmv(m, x, 4, {}, /*repetitions=*/3);
  EXPECT_GT(result.kernel_seconds, 0.0);
}

TEST(RcceSpmv, RepetitionsValidated) {
  const auto m = gen::stencil_2d(4, 4);
  const auto x = test_vector(m.cols());
  EXPECT_THROW(rcce_spmv(m, x, 2, {}, 0), std::invalid_argument);
}

TEST(RcceSpmv, XSizeValidated) {
  const auto m = gen::stencil_2d(4, 4);
  const std::vector<real_t> x(3, 1.0);
  EXPECT_THROW(rcce_spmv(m, x, 2), std::invalid_argument);
}

/// Sweep: result equals the serial reference for every UE count tried.
class RcceSpmvUeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RcceSpmvUeSweep, MatchesReference) {
  expect_matches_reference(gen::power_law(1500, 7, 1.2, 8), GetParam());
}

INSTANTIATE_TEST_SUITE_P(UeCounts, RcceSpmvUeSweep, ::testing::Values(1, 2, 3, 5, 8, 16, 24));

}  // namespace
}  // namespace scc::spmv
