#include "cache/tlb.hpp"

#include <gtest/gtest.h>

namespace scc::cache {
namespace {

TEST(Tlb, DefaultIsP54cDtlb) {
  Tlb tlb;
  EXPECT_EQ(tlb.config().entries, 64);
  EXPECT_EQ(tlb.config().ways, 4);
  EXPECT_EQ(tlb.config().page_bytes, 4096u);
}

TEST(Tlb, ColdMissThenHit) {
  Tlb tlb;
  EXPECT_FALSE(tlb.access(0x1000));
  EXPECT_TRUE(tlb.access(0x1000));
  EXPECT_TRUE(tlb.access(0x1fff));  // same page
  EXPECT_FALSE(tlb.access(0x2000)); // next page
  EXPECT_EQ(tlb.misses(), 2u);
  EXPECT_EQ(tlb.hits(), 2u);
}

TEST(Tlb, SixtyFourPagesFit) {
  Tlb tlb;
  for (std::uint64_t p = 0; p < 64; ++p) tlb.access(p * 4096);
  for (std::uint64_t p = 0; p < 64; ++p) {
    EXPECT_TRUE(tlb.access(p * 4096)) << "page " << p;
  }
}

TEST(Tlb, WorkingSetBeyondCapacityThrashes) {
  Tlb tlb;
  // Two sweeps over 256 pages (4x capacity): second sweep still misses.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::uint64_t p = 0; p < 256; ++p) tlb.access(p * 4096);
  }
  EXPECT_GT(tlb.misses(), 400u);
}

TEST(Tlb, FlushDropsTranslations) {
  Tlb tlb;
  tlb.access(0x5000);
  tlb.flush();
  EXPECT_FALSE(tlb.access(0x5000));
}

TEST(Tlb, ConfigValidated) {
  TlbConfig bad;
  bad.entries = 62;  // not divisible by ways
  EXPECT_THROW(Tlb{bad}, std::invalid_argument);
  bad = TlbConfig{};
  bad.page_bytes = 3000;  // not a power of two
  EXPECT_THROW(Tlb{bad}, std::invalid_argument);
}

TEST(Tlb, SetConflictsEvict) {
  // 4-way over 16 sets: five pages mapping to the same set evict one.
  Tlb tlb;
  for (std::uint64_t i = 0; i < 5; ++i) tlb.access(i * 16 * 4096);
  int resident = 0;
  for (std::uint64_t i = 0; i < 5; ++i) {
    if (tlb.access(i * 16 * 4096)) ++resident;
  }
  EXPECT_LT(resident, 5);
}

}  // namespace
}  // namespace scc::cache
