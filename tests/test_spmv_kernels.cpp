#include "spmv/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"

namespace scc::spmv {
namespace {

using sparse::CsrMatrix;

std::vector<real_t> test_vector(index_t n) {
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(static_cast<double>(i) * 0.37) + 2.0;
  }
  return x;
}

void expect_near(std::span<const real_t> got, std::span<const real_t> want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-9 * (1.0 + std::abs(want[i]))) << "row " << i;
  }
}

TEST(Kernels, CsrMatchesDenseReference) {
  const auto m = gen::power_law(800, 7, 1.1, 1);
  const auto x = test_vector(m.cols());
  std::vector<real_t> y(static_cast<std::size_t>(m.rows()));
  spmv_csr(m, x, y);
  expect_near(y, sparse::dense_reference_spmv(m, x));
}

TEST(Kernels, CsrShapeChecked) {
  const auto m = gen::stencil_2d(5, 5);
  std::vector<real_t> x(10), y(25);
  EXPECT_THROW(spmv_csr(m, x, y), std::invalid_argument);
  std::vector<real_t> x2(25), y2(10);
  EXPECT_THROW(spmv_csr(m, x2, y2), std::invalid_argument);
}

TEST(Kernels, CsrRangeComputesOnlyRequestedRows) {
  const auto m = gen::banded(100, 5, 0.5, 2);
  const auto x = test_vector(m.cols());
  std::vector<real_t> y(100, -99.0);
  spmv_csr_range(m, 10, 20, x, y);
  const auto ref = sparse::dense_reference_spmv(m, x);
  for (index_t r = 0; r < 100; ++r) {
    if (r >= 10 && r < 20) {
      EXPECT_NEAR(y[static_cast<std::size_t>(r)], ref[static_cast<std::size_t>(r)], 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(r)], -99.0);
    }
  }
}

TEST(Kernels, CsrRangeValidatesRange) {
  const auto m = gen::stencil_2d(4, 4);
  const auto x = test_vector(m.cols());
  std::vector<real_t> y(16);
  EXPECT_THROW(spmv_csr_range(m, 5, 4, x, y), std::invalid_argument);
  EXPECT_THROW(spmv_csr_range(m, 0, 17, x, y), std::invalid_argument);
}

TEST(Kernels, EmptyRowsProduceZero) {
  sparse::CooMatrix coo(4, 4);
  coo.add(1, 1, 3.0);
  const auto m = CsrMatrix::from_coo(std::move(coo));
  const auto x = test_vector(4);
  std::vector<real_t> y(4, -1.0);
  spmv_csr(m, x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  EXPECT_DOUBLE_EQ(y[3], 0.0);
}

TEST(Kernels, NoXMissUsesOnlyFirstElement) {
  const auto m = gen::random_uniform(200, 5, 3);
  auto x = test_vector(m.cols());
  std::vector<real_t> y(static_cast<std::size_t>(m.rows()));
  spmv_csr_no_x_miss(m, x, y);
  // Every product term uses x[0]: y[i] = x[0] * sum(row values).
  for (index_t r = 0; r < m.rows(); ++r) {
    real_t row_sum = 0.0;
    for (real_t v : m.row_vals(r)) row_sum += v;
    EXPECT_NEAR(y[static_cast<std::size_t>(r)], x[0] * row_sum, 1e-9);
  }
}

TEST(Kernels, NoXMissMatchesCsrWhenXIsConstant) {
  // With a constant x the two kernels must agree exactly in math.
  const auto m = gen::power_law(300, 6, 1.2, 4);
  std::vector<real_t> x(static_cast<std::size_t>(m.cols()), 1.5);
  std::vector<real_t> a(static_cast<std::size_t>(m.rows()));
  std::vector<real_t> b(static_cast<std::size_t>(m.rows()));
  spmv_csr(m, x, a);
  spmv_csr_no_x_miss(m, x, b);
  expect_near(a, b);
}

TEST(Kernels, CooMatchesCsr) {
  const auto m = gen::circuit(500, 3.0, 0.4, 5);
  const auto x = test_vector(m.cols());
  std::vector<real_t> y_csr(static_cast<std::size_t>(m.rows()));
  std::vector<real_t> y_coo(static_cast<std::size_t>(m.rows()));
  spmv_csr(m, x, y_csr);
  spmv_coo(m.to_coo(), x, y_coo);
  expect_near(y_coo, y_csr);
}

TEST(Kernels, ParallelMatchesSerial) {
  const auto m = gen::power_law(2000, 9, 1.0, 6);
  const auto x = test_vector(m.cols());
  std::vector<real_t> serial(static_cast<std::size_t>(m.rows()));
  spmv_csr(m, x, serial);
  for (int threads : {1, 2, 3, 8}) {
    std::vector<real_t> parallel(static_cast<std::size_t>(m.rows()));
    spmv_csr_parallel(m, x, parallel, threads);
    expect_near(parallel, serial);
  }
}

TEST(Kernels, ParallelRejectsBadThreadCount) {
  const auto m = gen::stencil_2d(4, 4);
  const auto x = test_vector(m.cols());
  std::vector<real_t> y(16);
  EXPECT_THROW(spmv_csr_parallel(m, x, y, 0), std::invalid_argument);
}

TEST(Kernels, RectangularMatrixSupported) {
  sparse::CooMatrix coo(3, 6);
  coo.add(0, 5, 2.0);
  coo.add(2, 0, 3.0);
  const auto m = CsrMatrix::from_coo(std::move(coo));
  const auto x = test_vector(6);
  std::vector<real_t> y(3);
  spmv_csr(m, x, y);
  EXPECT_NEAR(y[0], 2.0 * x[5], 1e-12);
  EXPECT_NEAR(y[2], 3.0 * x[0], 1e-12);
}

/// Cross-kernel equivalence sweep across matrix families and sizes.
struct KernelCase {
  int family;
  index_t n;
};

class KernelEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelEquivalence, AllKernelsAgree) {
  const auto [family, n] = GetParam();
  CsrMatrix m;
  switch (family) {
    case 0: m = gen::banded(n, 6, 0.5, 11); break;
    case 1: m = gen::random_uniform(n, 5, 11); break;
    case 2: m = gen::power_law(n, 6, 1.2, 11); break;
    case 3: m = gen::circuit(n, 2.0, 0.3, 11); break;
    default: m = gen::fem_blocks(n / 8, 8, 2, 11); break;
  }
  const auto x = test_vector(m.cols());
  const auto ref = sparse::dense_reference_spmv(m, x);
  std::vector<real_t> y(static_cast<std::size_t>(m.rows()));

  spmv_csr(m, x, y);
  expect_near(y, ref);

  spmv_coo(m.to_coo(), x, y);
  expect_near(y, ref);

  const auto ell = sparse::EllMatrix::from_csr(m, 1000.0);
  spmv_ell(ell, x, y);
  expect_near(y, ref);

  spmv_csr_parallel(m, x, y, 4);
  expect_near(y, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KernelEquivalence,
    ::testing::Values(KernelCase{0, 64}, KernelCase{0, 997}, KernelCase{1, 256},
                      KernelCase{1, 1024}, KernelCase{2, 512}, KernelCase{3, 2048},
                      KernelCase{4, 512}));

}  // namespace
}  // namespace scc::spmv
