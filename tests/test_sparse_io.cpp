#include "sparse/io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "gen/generators.hpp"

namespace scc::sparse {
namespace {

TEST(MatrixMarket, ReadGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 3\n"
      "1 1 1.5\n"
      "2 3 -2.0\n"
      "3 2 4.25\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.row_vals(0)[0], 1.5);
  EXPECT_EQ(m.row_cols(1)[0], 2);
  EXPECT_DOUBLE_EQ(m.row_vals(2)[0], 4.25);
}

TEST(MatrixMarket, ReadPatternAssignsOnes) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.row_vals(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(m.row_vals(1)[0], 1.0);
}

TEST(MatrixMarket, ReadSymmetricMirrorsOffDiagonals) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 3.0\n"
      "3 3 4.0\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 4);  // diagonal entries not duplicated
  EXPECT_DOUBLE_EQ(m.row_vals(0)[1], 3.0);  // mirrored (1,2)
}

TEST(MatrixMarket, ReadIntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 1 7\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.row_vals(0)[0], 7.0);
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::istringstream in("%%NotMatrixMarket matrix coordinate real general\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(MatrixMarket, RejectsArrayFormat) {
  std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(MatrixMarket, RejectsUnsupportedField) {
  std::istringstream in("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(MatrixMarket, RejectsOutOfRangeIndices) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(MatrixMarket, RejectsEmptyStream) {
  std::istringstream in("");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(MatrixMarket, SkipsBlankAndCommentLines) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment\n"
      "\n"
      "2 2 1\n"
      "% another\n"
      "\n"
      "2 2 5.0\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 1);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  const CsrMatrix m = gen::random_uniform(60, 5, 77);
  std::stringstream buffer;
  write_matrix_market(buffer, m);
  const CsrMatrix back = read_matrix_market(buffer);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.nnz(), m.nnz());
  for (index_t r = 0; r < m.rows(); ++r) {
    const auto a = m.row_vals(r);
    const auto b = back.row_vals(r);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_DOUBLE_EQ(a[k], b[k]);
    }
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const CsrMatrix m = gen::banded(40, 4, 0.5, 3);
  const std::string path = ::testing::TempDir() + "/scc_spmv_io_test.mtx";
  write_matrix_market_file(path, m);
  const CsrMatrix back = read_matrix_market_file(path);
  EXPECT_EQ(back.nnz(), m.nnz());
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/dir/none.mtx"), std::invalid_argument);
}

}  // namespace
}  // namespace scc::sparse
