// The api_redesign contract: every deprecated Engine entry point must be a
// pure wrapper over Engine::run(matrix, RunSpec) -- same code path, so the
// results (and their serialized reports) are byte-identical.
#include <gtest/gtest.h>

#include <vector>

#include "gen/generators.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"
#include "sparse/csr.hpp"

namespace scc::sim {
namespace {

sparse::CsrMatrix test_matrix() { return gen::banded(800, 16, 0.5, 11); }

// Byte-identical check: serialize both results against the same spec and
// compare the JSON text verbatim.
void expect_identical(const Engine& engine, const RunSpec& spec, const RunResult& legacy,
                      const RunResult& unified) {
  EXPECT_EQ(run_report_json(engine, spec, legacy).dump(2),
            run_report_json(engine, spec, unified).dump(2));
  EXPECT_EQ(legacy.seconds, unified.seconds);
  EXPECT_EQ(legacy.gflops, unified.gflops);
  EXPECT_EQ(legacy.bandwidth_bound, unified.bandwidth_bound);
  ASSERT_EQ(legacy.cores.size(), unified.cores.size());
  for (std::size_t i = 0; i < legacy.cores.size(); ++i) {
    EXPECT_EQ(legacy.cores[i].core, unified.cores[i].core);
    EXPECT_EQ(legacy.cores[i].isolated_seconds, unified.cores[i].isolated_seconds);
  }
  EXPECT_EQ(legacy.mesh.total_link_bytes, unified.mesh.total_link_bytes);
}

TEST(RunSpec, PolicyWrapperMatchesUnifiedRun) {
  const auto m = test_matrix();
  const Engine engine;
  for (const auto variant : {SpmvVariant::kCsr, SpmvVariant::kCsrNoXMiss}) {
    RunSpec spec;
    spec.ue_count = 24;
    spec.policy = chip::MappingPolicy::kDistanceReduction;
    spec.variant = variant;
    expect_identical(engine, spec,
                     engine.run(m, 24, chip::MappingPolicy::kDistanceReduction, variant),
                     engine.run(m, spec));
  }
}

TEST(RunSpec, ExplicitCoresWrapperMatchesUnifiedRun) {
  const auto m = test_matrix();
  const Engine engine;
  const std::vector<int> cores = {0, 5, 17, 40};
  RunSpec spec;
  spec.cores = cores;
  expect_identical(engine, spec, engine.run_on_cores(m, cores), engine.run(m, spec));
}

TEST(RunSpec, ForcedHopsWrapperMatchesUnifiedRun) {
  const auto m = test_matrix();
  const Engine engine;
  for (int hops = 0; hops <= 3; ++hops) {
    RunSpec spec;
    spec.cores = {0};
    spec.forced_hops = hops;
    expect_identical(engine, spec, engine.run_single_core_at_hops(m, hops),
                     engine.run(m, spec));
  }
}

TEST(RunSpec, FormatWrapperMatchesUnifiedRun) {
  const auto m = test_matrix();
  const Engine engine;
  for (const auto format : {StorageFormat::kCsr, StorageFormat::kEll, StorageFormat::kBcsr2,
                            StorageFormat::kBcsr4, StorageFormat::kHyb}) {
    RunSpec spec;
    spec.ue_count = 8;
    spec.policy = chip::MappingPolicy::kDistanceReduction;
    spec.format = format;
    expect_identical(engine, spec,
                     engine.run_format(m, 8, chip::MappingPolicy::kDistanceReduction, format),
                     engine.run(m, spec));
  }
}

TEST(RunSpec, DegradedWrapperMatchesUnifiedRun) {
  const auto m = test_matrix();
  const Engine engine;
  const std::vector<int> dead = {1, 3};
  RunSpec spec;
  spec.ue_count = 8;
  spec.policy = chip::MappingPolicy::kDistanceReduction;
  spec.dead_ranks = dead;
  spec.detection_seconds = 0.002;
  const DegradedRunResult legacy =
      engine.run_degraded(m, 8, chip::MappingPolicy::kDistanceReduction, dead, 0.002);
  const RunResult unified = engine.run(m, spec);

  // The unified result folds the degraded accounting into RunResult.
  EXPECT_EQ(unified.dead_count, legacy.dead_count);
  EXPECT_EQ(unified.reshipped_bytes, legacy.reshipped_bytes);
  EXPECT_EQ(unified.recovery_seconds, legacy.recovery_seconds);
  EXPECT_EQ(unified.seconds, legacy.seconds);
  EXPECT_EQ(unified.gflops, legacy.gflops);
  ASSERT_EQ(unified.cores.size(), legacy.result.cores.size());
  for (std::size_t i = 0; i < unified.cores.size(); ++i) {
    EXPECT_EQ(unified.cores[i].core, legacy.result.cores[i].core);
    EXPECT_EQ(unified.cores[i].isolated_seconds, legacy.result.cores[i].isolated_seconds);
  }
}

TEST(RunSpec, InvalidSpecsAreRejected) {
  const auto m = test_matrix();
  const Engine engine;
  {
    RunSpec spec;
    spec.forced_hops = 4;  // mesh diameter caps forced hops at 3
    spec.cores = {0};
    EXPECT_THROW(engine.run(m, spec), std::invalid_argument);
  }
  {
    RunSpec spec;
    spec.dead_ranks = {0};  // rank 0 owns the matrix and must survive
    spec.ue_count = 4;
    EXPECT_THROW(engine.run(m, spec), std::invalid_argument);
  }
  {
    RunSpec spec;
    spec.dead_ranks = {1};
    spec.ue_count = 4;
    spec.format = StorageFormat::kEll;  // degraded path models CSR only
    EXPECT_THROW(engine.run(m, spec), std::invalid_argument);
  }
}

TEST(RunSpec, RecorderNeverChangesTheNumbers) {
  const auto m = test_matrix();
  const Engine engine;
  RunSpec plain;
  plain.ue_count = 8;
  plain.policy = chip::MappingPolicy::kDistanceReduction;
  RunSpec observed = plain;
  obs::Recorder recorder;
  observed.recorder = &recorder;
  const auto a = engine.run(m, plain);
  const auto b = engine.run(m, observed);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.gflops, b.gflops);
  EXPECT_FALSE(recorder.events().empty());
  EXPECT_FALSE(recorder.metrics().empty());
}

}  // namespace
}  // namespace scc::sim
