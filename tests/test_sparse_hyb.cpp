#include "sparse/hyb.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "spmv/kernels.hpp"

namespace scc::sparse {
namespace {

TEST(Hyb, SplitConservesNonzeros) {
  const auto m = gen::power_law(500, 8, 1.3, 1);
  const auto h = HybMatrix::from_csr(m);
  EXPECT_EQ(h.ell_nnz() + h.coo_nnz(), m.nnz());
}

TEST(Hyb, UniformRowsAllInEllAtZeroSpill) {
  const auto m = gen::random_uniform(300, 7, 2);  // every row exactly 8 entries
  const auto h = HybMatrix::from_csr(m, 0.0);
  EXPECT_EQ(h.ell_width(), 8);
  EXPECT_EQ(h.coo_nnz(), 0);
}

TEST(Hyb, SpillBudgetRespected) {
  const auto m = gen::random_uniform(300, 7, 2);
  const auto h = HybMatrix::from_csr(m, 0.33);
  EXPECT_LE(static_cast<double>(h.coo_nnz()), 0.33 * static_cast<double>(m.nnz()) + 1.0);
  // The splitter picks the *smallest* width within budget, so some spill
  // occurs whenever the budget allows trimming whole slices.
  EXPECT_LE(h.ell_width(), 8);
}

TEST(Hyb, SkewedRowsSpillToCoo) {
  // One huge row among diagonal rows: the tail must go to COO.
  CooMatrix coo(200, 200);
  for (index_t i = 0; i < 200; ++i) coo.add(i, i, 1.0);
  for (index_t j = 1; j < 150; ++j) coo.add(0, j, 2.0);
  const auto m = CsrMatrix::from_coo(std::move(coo));
  const auto h = HybMatrix::from_csr(m, 0.40);
  EXPECT_GT(h.coo_nnz(), 0);
  EXPECT_LT(h.ell_width(), 150);
  EXPECT_LE(static_cast<double>(h.coo_nnz()),
            0.40 * static_cast<double>(m.nnz()) + 1.0);
}

TEST(Hyb, ZeroSpillFractionMeansFullWidth) {
  const auto m = gen::power_law(300, 6, 1.2, 3);
  const auto h = HybMatrix::from_csr(m, 0.0);
  EXPECT_EQ(h.coo_nnz(), 0);
}

TEST(Hyb, SpillFractionValidated) {
  const auto m = gen::stencil_2d(4, 4);
  EXPECT_THROW(HybMatrix::from_csr(m, 1.0), std::invalid_argument);
  EXPECT_THROW(HybMatrix::from_csr(m, -0.1), std::invalid_argument);
}

TEST(Hyb, SpmvMatchesReference) {
  const auto m = gen::power_law(800, 10, 1.1, 4);
  std::vector<real_t> x(static_cast<std::size_t>(m.cols()));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1.0 + 0.01 * static_cast<double>(i % 31);
  const auto ref = dense_reference_spmv(m, x);
  for (double spill : {0.0, 0.1, 0.33, 0.9}) {
    const auto h = HybMatrix::from_csr(m, spill);
    std::vector<real_t> y(static_cast<std::size_t>(m.rows()), -1.0);
    spmv::spmv_hyb(h, x, y);
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_NEAR(y[i], ref[i], 1e-9) << "spill " << spill << " row " << i;
    }
  }
}

TEST(Hyb, EmptyMatrix) {
  CooMatrix coo(8, 8);
  const auto m = CsrMatrix::from_coo(std::move(coo));
  const auto h = HybMatrix::from_csr(m);
  EXPECT_EQ(h.ell_width(), 0);
  EXPECT_EQ(h.coo_nnz(), 0);
}

/// Sweep: nonzero conservation and SpMV correctness across families.
class HybSweep : public ::testing::TestWithParam<int> {};

TEST_P(HybSweep, ConservesAndComputes) {
  CsrMatrix m;
  switch (GetParam()) {
    case 0: m = gen::banded(400, 6, 0.5, 7); break;
    case 1: m = gen::circuit(400, 3.0, 0.4, 7); break;
    case 2: m = gen::power_law(400, 9, 1.4, 7); break;
    default: m = gen::fem_blocks(40, 8, 2, 7); break;
  }
  const auto h = HybMatrix::from_csr(m);
  EXPECT_EQ(h.ell_nnz() + h.coo_nnz(), m.nnz());
  std::vector<real_t> x(static_cast<std::size_t>(m.cols()), 0.5);
  std::vector<real_t> y(static_cast<std::size_t>(m.rows()));
  spmv::spmv_hyb(h, x, y);
  const auto ref = dense_reference_spmv(m, x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], ref[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, HybSweep, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace scc::sparse
