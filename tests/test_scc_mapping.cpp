#include "scc/mapping.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace scc::chip {
namespace {

TEST(Mapping, StandardIsIdentity) {
  const auto cores = map_ues_to_cores(MappingPolicy::kStandard, 6);
  ASSERT_EQ(cores.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(cores[static_cast<std::size_t>(i)], i);
}

TEST(Mapping, DistanceReductionMatchesPaperExample) {
  // The paper: with 4 UEs, distance reduction selects cores 0, 1, 10, 11.
  const auto cores = map_ues_to_cores(MappingPolicy::kDistanceReduction, 4);
  EXPECT_EQ(cores, (std::vector<int>{0, 1, 10, 11}));
}

TEST(Mapping, DistanceReductionEightZeroHopCores) {
  const auto cores = map_ues_to_cores(MappingPolicy::kDistanceReduction, 8);
  EXPECT_EQ(cores, (std::vector<int>{0, 1, 10, 11, 24, 25, 34, 35}));
  for (int core : cores) EXPECT_EQ(hops_to_memory(core), 0);
}

TEST(Mapping, OneAndTwoUesIdenticalAcrossPolicies) {
  // The paper notes no difference for 1 and 2 cores.
  for (int n : {1, 2}) {
    EXPECT_EQ(map_ues_to_cores(MappingPolicy::kStandard, n),
              map_ues_to_cores(MappingPolicy::kDistanceReduction, n));
  }
}

TEST(Mapping, FullChipUsesAllCoresBothPolicies) {
  for (auto policy : {MappingPolicy::kStandard, MappingPolicy::kDistanceReduction}) {
    const auto cores = map_ues_to_cores(policy, 48);
    std::set<int> unique(cores.begin(), cores.end());
    EXPECT_EQ(unique.size(), 48u);
  }
}

TEST(Mapping, NoDuplicatesAtAnyCount) {
  for (int n = 1; n <= 48; ++n) {
    for (auto policy : {MappingPolicy::kStandard, MappingPolicy::kDistanceReduction}) {
      const auto cores = map_ues_to_cores(policy, n);
      std::set<int> unique(cores.begin(), cores.end());
      EXPECT_EQ(unique.size(), static_cast<std::size_t>(n));
    }
  }
}

TEST(Mapping, DistanceReductionNeverWorseOnAverageHops) {
  for (int n = 1; n <= 48; ++n) {
    const double std_hops = average_hops(map_ues_to_cores(MappingPolicy::kStandard, n));
    const double dr_hops =
        average_hops(map_ues_to_cores(MappingPolicy::kDistanceReduction, n));
    EXPECT_LE(dr_hops, std_hops + 1e-12) << n << " UEs";
  }
}

TEST(Mapping, DistanceReductionHopsNondecreasingInRank) {
  const auto cores = map_ues_to_cores(MappingPolicy::kDistanceReduction, 48);
  for (std::size_t i = 1; i < cores.size(); ++i) {
    EXPECT_LE(hops_to_memory(cores[i - 1]), hops_to_memory(cores[i]));
  }
}

TEST(Mapping, DistanceReductionSpreadsAcrossMcs) {
  // 24 UEs: standard crowds 12 cores on each bottom MC; distance reduction
  // puts 6 on each of the four.
  const auto std_cores = map_ues_to_cores(MappingPolicy::kStandard, 24);
  const auto dr_cores = map_ues_to_cores(MappingPolicy::kDistanceReduction, 24);
  EXPECT_EQ(max_cores_per_mc(std_cores), 12);
  EXPECT_EQ(max_cores_per_mc(dr_cores), 6);
}

TEST(Mapping, RejectsBadUeCount) {
  EXPECT_THROW(map_ues_to_cores(MappingPolicy::kStandard, 0), std::invalid_argument);
  EXPECT_THROW(map_ues_to_cores(MappingPolicy::kStandard, 49), std::invalid_argument);
}

TEST(Mapping, ToStringNames) {
  EXPECT_EQ(to_string(MappingPolicy::kStandard), "standard");
  EXPECT_EQ(to_string(MappingPolicy::kDistanceReduction), "distance-reduction");
}

TEST(Mapping, AverageHopsOfZeroHopSet) {
  EXPECT_DOUBLE_EQ(average_hops({0, 1, 10, 11}), 0.0);
}

TEST(Mapping, HelpersRejectEmpty) {
  EXPECT_THROW(average_hops({}), std::invalid_argument);
  EXPECT_THROW(max_cores_per_mc({}), std::invalid_argument);
}

TEST(Mapping, ContentionAwareMinimizesPerMcLoad) {
  for (int n = 1; n <= 48; ++n) {
    const auto cores = map_ues_to_cores(MappingPolicy::kContentionAware, n);
    const int optimal = (n + kMemoryControllerCount - 1) / kMemoryControllerCount;
    EXPECT_EQ(max_cores_per_mc(cores), optimal) << n << " UEs";
  }
}

TEST(Mapping, ContentionAwareCoincidesWithDrAtBalancedCounts) {
  // When the UE count divides evenly into complete hop-tiers (8 zero-hop
  // cores, then 16 one-hop, ...), both policies pick the same core *sets*
  // (order may differ: contention-aware interleaves MCs).
  for (int n : {8, 24, 48}) {
    auto dr = map_ues_to_cores(MappingPolicy::kDistanceReduction, n);
    auto ca = map_ues_to_cores(MappingPolicy::kContentionAware, n);
    std::sort(dr.begin(), dr.end());
    std::sort(ca.begin(), ca.end());
    EXPECT_EQ(dr, ca) << n << " UEs";
  }
}

TEST(Mapping, ContentionAwareBeatsDrOnLoadAtOddCounts) {
  // 6 UEs: distance reduction takes the first six zero-hop cores (0,1,10,
  // 11,24,25 -> two on MC0); contention-aware caps every MC at two.
  const auto dr = map_ues_to_cores(MappingPolicy::kDistanceReduction, 6);
  const auto ca = map_ues_to_cores(MappingPolicy::kContentionAware, 6);
  EXPECT_EQ(max_cores_per_mc(ca), 2);
  EXPECT_LE(max_cores_per_mc(ca), max_cores_per_mc(dr));
  EXPECT_EQ(average_hops(ca), 0.0);  // still zero-hop cores only
}

TEST(Mapping, ContentionAwareHopsNeverWorseThanStandard) {
  for (int n = 1; n <= 48; ++n) {
    EXPECT_LE(average_hops(map_ues_to_cores(MappingPolicy::kContentionAware, n)),
              average_hops(map_ues_to_cores(MappingPolicy::kStandard, n)) + 1e-12)
        << n << " UEs";
  }
}

TEST(Mapping, ContentionAwareToString) {
  EXPECT_EQ(to_string(MappingPolicy::kContentionAware), "contention-aware");
}

// --- partition-aware helpers (serving-layer space partitioner) ---

TEST(Partition, CoresByMcGroupsQuadrants) {
  const auto by_mc = cores_by_mc({0, 11, 24, 47, 1});
  for (int mc = 0; mc < kMemoryControllerCount; ++mc) {
    for (const int core : by_mc[static_cast<std::size_t>(mc)]) {
      EXPECT_EQ(memory_controller_of_core(core), mc);
    }
  }
  // Input order preserved within a group.
  const auto& mc0 = by_mc[static_cast<std::size_t>(memory_controller_of_core(0))];
  ASSERT_GE(mc0.size(), 2u);
  EXPECT_LT(std::find(mc0.begin(), mc0.end(), 0), std::find(mc0.begin(), mc0.end(), 1));
}

TEST(Partition, CoresByMcCoversWholeChip) {
  std::vector<int> all(48);
  for (int i = 0; i < 48; ++i) all[static_cast<std::size_t>(i)] = i;
  const auto by_mc = cores_by_mc(all);
  for (const auto& group : by_mc) EXPECT_EQ(group.size(), 12u);
}

TEST(Partition, OrderByHopsAscendingStable) {
  const auto ordered = order_by_hops({47, 0, 35, 24, 1});
  for (std::size_t i = 1; i < ordered.size(); ++i) {
    const int prev = hops_to_memory(ordered[i - 1]);
    const int next = hops_to_memory(ordered[i]);
    EXPECT_LE(prev, next);
    if (prev == next) {
      EXPECT_LT(ordered[i - 1], ordered[i]);
    }
  }
  EXPECT_EQ(ordered.front(), 0);  // zero-hop core first
}

TEST(Partition, PickPartitionCoresFillsPreferredQuadrantFirst) {
  std::vector<int> free(48);
  for (int i = 0; i < 48; ++i) free[static_cast<std::size_t>(i)] = i;
  const auto picked = pick_partition_cores(free, 12, {2, 0, 1, 3});
  ASSERT_EQ(picked.size(), 12u);
  for (const int core : picked) EXPECT_EQ(memory_controller_of_core(core), 2);
}

TEST(Partition, PickPartitionCoresSpillsInPreferenceOrder) {
  std::vector<int> free(48);
  for (int i = 0; i < 48; ++i) free[static_cast<std::size_t>(i)] = i;
  const auto picked = pick_partition_cores(free, 18, {1, 3, 0, 2});
  ASSERT_EQ(picked.size(), 18u);
  int on_mc1 = 0;
  int on_mc3 = 0;
  for (const int core : picked) {
    const int mc = memory_controller_of_core(core);
    EXPECT_TRUE(mc == 1 || mc == 3);
    (mc == 1 ? on_mc1 : on_mc3)++;
  }
  EXPECT_EQ(on_mc1, 12);
  EXPECT_EQ(on_mc3, 6);
}

TEST(Partition, PickPartitionCoresShortFreeSetReturnsWhatExists) {
  const auto picked = pick_partition_cores({3, 5}, 4, {0, 1, 2, 3});
  EXPECT_EQ(picked.size(), 2u);
  EXPECT_TRUE(pick_partition_cores({}, 1, {0, 1, 2, 3}).empty());
  EXPECT_TRUE(pick_partition_cores({7}, 0, {0, 1, 2, 3}).empty());
}

TEST(Partition, PickPartitionCoresRejectsBadInput) {
  EXPECT_THROW(pick_partition_cores({0}, -1, {0, 1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(pick_partition_cores({0, 0}, 1, {0, 1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(pick_partition_cores({48}, 1, {0, 1, 2, 3}), std::invalid_argument);
}

/// Parameterized: at every UE count, distance reduction minimizes the
/// maximum per-MC load among hop-minimal choices (never exceeds standard).
class MappingLoadSweep : public ::testing::TestWithParam<int> {};

TEST_P(MappingLoadSweep, DistanceReductionLoadNotWorse) {
  const int n = GetParam();
  const auto std_cores = map_ues_to_cores(MappingPolicy::kStandard, n);
  const auto dr_cores = map_ues_to_cores(MappingPolicy::kDistanceReduction, n);
  EXPECT_LE(max_cores_per_mc(dr_cores), max_cores_per_mc(std_cores));
}

INSTANTIATE_TEST_SUITE_P(UeCounts, MappingLoadSweep,
                         ::testing::Values(4, 8, 12, 16, 24, 32, 40, 48));

}  // namespace
}  // namespace scc::chip
