#include "sim/comm_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "scc/mapping.hpp"

namespace scc::sim {
namespace {

const chip::FrequencyConfig kConf0 = chip::FrequencyConfig::conf0();

TEST(CommModel, MpbAccessLocalVsRemote) {
  // Cores 0 and 1 share tile (0,0): zero mesh hops. Core 10 is 5 hops away.
  const double local = mpb_access_ns(kConf0, 0, 1);
  const double remote = mpb_access_ns(kConf0, 0, 10);
  EXPECT_GT(remote, local);
  EXPECT_NEAR(remote - local, 8.0 * 5.0 / 0.8, 1e-9);
}

TEST(CommModel, MpbAccessCoreClockScales) {
  const double slow = mpb_access_ns(kConf0, 0, 1);
  const double fast = mpb_access_ns(chip::FrequencyConfig::conf1(), 0, 1);
  EXPECT_NEAR(slow / fast, 800.0 / 533.0, 1e-9);
}

TEST(CommModel, MeshClockAffectsRemoteOnly) {
  const auto conf_fast_mesh = chip::FrequencyConfig(533, 1600, 800);
  EXPECT_DOUBLE_EQ(mpb_access_ns(kConf0, 0, 1), mpb_access_ns(conf_fast_mesh, 0, 1));
  EXPECT_GT(mpb_access_ns(kConf0, 0, 10), mpb_access_ns(conf_fast_mesh, 0, 10));
}

TEST(CommModel, FlagWaitIsPollMultiple) {
  CommCostModel model;
  EXPECT_NEAR(flag_wait_ns(kConf0, 0, 1, model),
              model.poll_iterations * mpb_access_ns(kConf0, 0, 1, model), 1e-9);
}

TEST(CommModel, SendCostGrowsLinearlyInSize) {
  const double small = send_ns(kConf0, 0, 2, 1024.0);
  const double large = send_ns(kConf0, 0, 2, 64.0 * 1024.0);
  EXPECT_GT(large, small);
  // Chunking adds handshakes: doubling again roughly doubles the cost.
  const double larger = send_ns(kConf0, 0, 2, 128.0 * 1024.0);
  EXPECT_NEAR(larger / large, 2.0, 0.2);
}

TEST(CommModel, SendRejectsNegativeSize) {
  EXPECT_THROW(send_ns(kConf0, 0, 1, -1.0), std::invalid_argument);
}

TEST(CommModel, BarrierSingleUeFree) {
  const std::vector<int> one = {0};
  EXPECT_DOUBLE_EQ(barrier_ns(kConf0, one, CommCostModel{}), 0.0);
}

TEST(CommModel, BarrierLinearInUeCount) {
  const auto cores12 = chip::map_ues_to_cores(chip::MappingPolicy::kDistanceReduction, 12);
  const auto cores24 = chip::map_ues_to_cores(chip::MappingPolicy::kDistanceReduction, 24);
  const auto cores48 = chip::map_ues_to_cores(chip::MappingPolicy::kDistanceReduction, 48);
  const double b12 = barrier_ns(kConf0, cores12);
  const double b24 = barrier_ns(kConf0, cores24);
  const double b48 = barrier_ns(kConf0, cores48);
  EXPECT_GT(b24, b12);
  EXPECT_GT(b48, b24);
  EXPECT_NEAR(b48 / b24, 2.0, 0.3);
}

TEST(CommModel, BarrierSameOrderOfMagnitudeAsEngineCalibration) {
  // The engine charges 6 us/UE at conf0 (calibrated against the paper's
  // aggregate behaviour); the derived primitive cost must land within an
  // order of magnitude -- it is lower because it excludes fences/OS noise.
  const auto cores = chip::map_ues_to_cores(chip::MappingPolicy::kStandard, 48);
  const double derived_per_ue = barrier_ns(kConf0, cores) / 48.0;
  EXPECT_GT(derived_per_ue, 600.0);     // > 0.6 us
  EXPECT_LT(derived_per_ue, 60000.0);   // < 60 us
}

TEST(CommModel, BarrierFasterAtHigherClocks) {
  const auto cores = chip::map_ues_to_cores(chip::MappingPolicy::kStandard, 24);
  EXPECT_LT(barrier_ns(chip::FrequencyConfig::conf1(), cores), barrier_ns(kConf0, cores));
}

TEST(CommModel, BroadcastLinearInReceivers) {
  const auto cores8 = chip::map_ues_to_cores(chip::MappingPolicy::kStandard, 8);
  const auto cores16 = chip::map_ues_to_cores(chip::MappingPolicy::kStandard, 16);
  const double b8 = broadcast_ns(kConf0, cores8, 4096.0);
  const double b16 = broadcast_ns(kConf0, cores16, 4096.0);
  EXPECT_NEAR(b16 / b8, 15.0 / 7.0, 0.4);
}

TEST(CommModel, ValidatesCoreIds) {
  EXPECT_THROW(mpb_access_ns(kConf0, -1, 0), std::invalid_argument);
  EXPECT_THROW(mpb_access_ns(kConf0, 0, 48), std::invalid_argument);
  EXPECT_THROW(barrier_ns(kConf0, std::vector<int>{}), std::invalid_argument);
}

}  // namespace
}  // namespace scc::sim
