#include "cli_commands.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/report.hpp"
#include "sparse/io.hpp"
#include "sparse/properties.hpp"

namespace scc::tools {
namespace {

CliArgs make(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "scc-spmv");
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(Cli, NoCommandPrintsUsage) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(make({}), out, err), 2);
  EXPECT_NE(err.str().find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandRejected) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(make({"frobnicate"}), out, err), 2);
}

TEST(Cli, ErrorsMapToExitOne) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(make({"analyze"}), out, err), 1);  // neither --matrix nor --id
  EXPECT_NE(err.str().find("error:"), std::string::npos);
}

TEST(Cli, GenerateWritesReadableMatrix) {
  const std::string path = temp_path("cli_gen.mtx");
  std::ostringstream out, err;
  const int rc = run_cli(make({"generate", "--family=random", "--n=200", "--row-nnz=5",
                               ("--out=" + path).c_str()}),
                         out, err);
  EXPECT_EQ(rc, 0) << err.str();
  const auto m = sparse::read_matrix_market_file(path);
  EXPECT_EQ(m.rows(), 200);
  EXPECT_EQ(m.nnz(), 200 * 6);
}

TEST(Cli, GenerateEveryFamily) {
  for (const char* family :
       {"banded", "stencil2d", "stencil3d", "fem", "random", "power-law", "circuit"}) {
    const std::string path = temp_path(std::string("cli_fam_") + family + ".mtx");
    std::ostringstream out, err;
    const std::string fam_arg = std::string("--family=") + family;
    const std::string out_arg = "--out=" + path;
    const int rc = run_cli(
        make({"generate", fam_arg.c_str(), "--n=300", "--side=8", "--blocks=20", out_arg.c_str()}),
        out, err);
    EXPECT_EQ(rc, 0) << family << ": " << err.str();
    EXPECT_GT(sparse::read_matrix_market_file(path).nnz(), 0) << family;
  }
}

TEST(Cli, GenerateRejectsUnknownFamily) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(make({"generate", "--family=quantum"}), out, err), 1);
}

TEST(Cli, TestbedExportsById) {
  setenv("SCC_TESTBED_SCALE", "0.05", 1);
  const std::string path = temp_path("cli_testbed.mtx");
  std::ostringstream out, err;
  const std::string out_arg = "--out=" + path;
  const int rc = run_cli(make({"testbed", "--id=24", out_arg.c_str()}), out, err);
  unsetenv("SCC_TESTBED_SCALE");
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("rajat15"), std::string::npos);
  EXPECT_GT(sparse::read_matrix_market_file(path).nnz(), 0);
}

TEST(Cli, AnalyzeReportsProperties) {
  const std::string path = temp_path("cli_analyze.mtx");
  std::ostringstream out, err;
  std::string out_arg = "--out=" + path;
  ASSERT_EQ(run_cli(make({"generate", "--family=banded", "--n=500", out_arg.c_str()}), out,
                    err),
            0);
  std::ostringstream report;
  std::string matrix_arg = "--matrix=" + path;
  ASSERT_EQ(run_cli(make({"analyze", matrix_arg.c_str()}), report, err), 0);
  EXPECT_NE(report.str().find("working set"), std::string::npos);
  EXPECT_NE(report.str().find("500"), std::string::npos);
}

TEST(Cli, SimulateReportsPerformance) {
  const std::string path = temp_path("cli_sim.mtx");
  std::ostringstream out, err;
  std::string out_arg = "--out=" + path;
  ASSERT_EQ(run_cli(make({"generate", "--family=random", "--n=2000", out_arg.c_str()}), out,
                    err),
            0);
  std::ostringstream report;
  std::string matrix_arg = "--matrix=" + path;
  ASSERT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--cores=8", "--mapping=ca",
                          "--conf=1", "--format=hyb"}),
                    report, err),
            0)
      << err.str();
  EXPECT_NE(report.str().find("MFLOPS"), std::string::npos);
  EXPECT_NE(report.str().find("HYB"), std::string::npos);
  EXPECT_NE(report.str().find("contention-aware"), std::string::npos);
}

TEST(Cli, SimulateValidatesOptions) {
  const std::string path = temp_path("cli_sim2.mtx");
  std::ostringstream out, err;
  std::string out_arg = "--out=" + path;
  ASSERT_EQ(run_cli(make({"generate", "--family=banded", "--n=100", out_arg.c_str()}), out,
                    err),
            0);
  std::string matrix_arg = "--matrix=" + path;
  EXPECT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--mapping=bogus"}), out, err), 1);
  EXPECT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--conf=7"}), out, err), 1);
  EXPECT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--format=csr5"}), out, err), 1);
}

TEST(Cli, ConvertWithRcmReducesBandwidth) {
  const std::string in_path = temp_path("cli_conv_in.mtx");
  const std::string out_path = temp_path("cli_conv_out.mtx");
  std::ostringstream out, err;
  std::string out_arg = "--out=" + in_path;
  // Circuit matrices are scattered; RCM should tighten them.
  ASSERT_EQ(run_cli(make({"generate", "--family=circuit", "--n=1500", out_arg.c_str()}), out,
                    err),
            0);
  std::ostringstream conv;
  std::string matrix_arg = "--matrix=" + in_path;
  std::string out2_arg = "--out=" + out_path;
  ASSERT_EQ(run_cli(make({"convert", matrix_arg.c_str(), "--rcm", out2_arg.c_str()}), conv,
                    err),
            0)
      << err.str();
  const auto before = sparse::read_matrix_market_file(in_path);
  const auto after = sparse::read_matrix_market_file(out_path);
  EXPECT_EQ(before.nnz(), after.nnz());
  EXPECT_LT(sparse::bandwidth(after), sparse::bandwidth(before));
}

std::string generate_matrix(const std::string& name) {
  const std::string path = temp_path(name);
  std::ostringstream out, err;
  const std::string out_arg = "--out=" + path;
  EXPECT_EQ(run_cli(make({"generate", "--family=banded", "--n=600", out_arg.c_str()}), out,
                    err),
            0)
      << err.str();
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(CliJson, SimulateBareJsonWritesValidReportToStdout) {
  const std::string path = generate_matrix("cli_json_stdout.mtx");
  std::ostringstream report, err;
  const std::string matrix_arg = "--matrix=" + path;
  ASSERT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--cores=4", "--json"}), report,
                    err),
            0)
      << err.str();
  const auto doc = obs::Json::parse(report.str());
  EXPECT_TRUE(obs::validate_report(doc).empty());
  EXPECT_EQ(doc.at("kind").as_string(), "run");
  EXPECT_EQ(doc.at("schema_version").as_int(), obs::kSchemaVersion);
  EXPECT_EQ(doc.at("per_core").size(), 4u);
  EXPECT_TRUE(doc.has("metrics"));
}

TEST(CliJson, SimulateWritesJsonFileAndJsonlTrace) {
  const std::string path = generate_matrix("cli_json_file.mtx");
  const std::string json_path = temp_path("cli_run.json");
  const std::string trace_path = temp_path("cli_run.trace.jsonl");
  std::ostringstream out, err;
  const std::string matrix_arg = "--matrix=" + path;
  const std::string json_arg = "--json=" + json_path;
  const std::string trace_arg = "--trace=" + trace_path;
  ASSERT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--cores=4", json_arg.c_str(),
                          trace_arg.c_str()}),
                    out, err),
            0)
      << err.str();

  const auto doc = obs::Json::parse(read_file(json_path));
  EXPECT_TRUE(obs::validate_report(doc).empty());

  // The trace is JSON-lines: every line parses and carries type/name/ts, and
  // the engine phases appear by their documented span names.
  std::ifstream trace(trace_path);
  std::string line;
  bool saw_partition = false;
  std::size_t lines = 0;
  while (std::getline(trace, line)) {
    ++lines;
    const auto event = obs::Json::parse(line);
    EXPECT_EQ(event.at("type").as_string(), "span");
    EXPECT_TRUE(event.has("ts"));
    if (event.at("name").as_string() == "engine.partition") saw_partition = true;
  }
  EXPECT_GT(lines, 4u);  // partition + 4 core traces + replay + contention
  EXPECT_TRUE(saw_partition);
}

TEST(CliJson, TraceFlagRequiresAPath) {
  const std::string path = generate_matrix("cli_trace_req.mtx");
  std::ostringstream out, err;
  const std::string matrix_arg = "--matrix=" + path;
  EXPECT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--trace"}), out, err), 1);
  EXPECT_NE(err.str().find("error:"), std::string::npos);
}

TEST(CliJson, ReportAggregatesRunFiles) {
  const std::string path = generate_matrix("cli_report_in.mtx");
  const std::string run_a = temp_path("cli_report_a.json");
  const std::string run_b = temp_path("cli_report_b.json");
  const std::string matrix_arg = "--matrix=" + path;
  for (const auto& [cores, file] : {std::pair{"4", run_a}, std::pair{"8", run_b}}) {
    std::ostringstream out, err;
    const std::string cores_arg = std::string("--cores=") + cores;
    const std::string json_arg = "--json=" + file;
    ASSERT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), cores_arg.c_str(),
                            json_arg.c_str()}),
                      out, err),
              0)
        << err.str();
  }

  std::ostringstream table, err;
  ASSERT_EQ(run_cli(make({"report", run_a.c_str(), run_b.c_str()}), table, err), 0)
      << err.str();
  EXPECT_NE(table.str().find("MFLOPS"), std::string::npos);
  EXPECT_NE(table.str().find("cli_report_a.json"), std::string::npos);

  std::ostringstream json_out;
  ASSERT_EQ(run_cli(make({"report", run_a.c_str(), run_b.c_str(), "--json"}), json_out, err),
            0)
      << err.str();
  const auto doc = obs::Json::parse(json_out.str());
  EXPECT_TRUE(obs::validate_report(doc).empty());
  EXPECT_EQ(doc.at("kind").as_string(), "report");
  EXPECT_EQ(doc.at("sources").size(), 2u);
}

TEST(CliJson, ReportRejectsInvalidInput) {
  const std::string bogus = temp_path("cli_report_bogus.json");
  std::ofstream(bogus) << "{\"kind\": \"run\"}\n";  // missing schema_version
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(make({"report", bogus.c_str()}), out, err), 1);
  EXPECT_NE(err.str().find("error:"), std::string::npos);
}

TEST(CliServe, TableRunSucceeds) {
  setenv("SCC_TESTBED_SCALE", "0.05", 1);
  std::ostringstream out, err;
  const int rc = run_cli(
      make({"serve", "--requests=20", "--load=500", "--policy=quadrants"}), out, err);
  unsetenv("SCC_TESTBED_SCALE");
  ASSERT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("throughput"), std::string::npos);
  EXPECT_NE(out.str().find("quadrants"), std::string::npos);
}

TEST(CliServe, JsonValidatesAndSeedControlsDeterminism) {
  setenv("SCC_TESTBED_SCALE", "0.05", 1);
  const auto run_once = [&](const char* seed) {
    std::ostringstream out, err;
    EXPECT_EQ(run_cli(make({"serve", "--requests=20", "--load=500", seed, "--json"}),
                      out, err),
              0)
        << err.str();
    return out.str();
  };
  const std::string a = run_once("--seed=0x5e12e");
  const std::string b = run_once("--seed=0x5e12e");
  const std::string c = run_once("--seed=99");
  unsetenv("SCC_TESTBED_SCALE");
  EXPECT_EQ(a, b);  // byte-identical across same-seed runs
  EXPECT_NE(a, c);
  const auto doc = obs::Json::parse(a);
  EXPECT_TRUE(obs::validate_report(doc).empty());
  EXPECT_EQ(doc.at("kind").as_string(), "serve");
  EXPECT_TRUE(doc.at("result").at("latency").has("total"));
}

TEST(CliServe, BadPolicyOrSeedRejected) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(make({"serve", "--policy=round-robin"}), out, err), 1);
  EXPECT_NE(err.str().find("error:"), std::string::npos);
  std::ostringstream out2, err2;
  EXPECT_EQ(run_cli(make({"serve", "--seed=banana"}), out2, err2), 1);
}

TEST(CliServe, ReportAggregatesServeJson) {
  setenv("SCC_TESTBED_SCALE", "0.05", 1);
  const std::string file = temp_path("cli_serve_report.json");
  {
    std::ostringstream out, err;
    const std::string json_arg = "--json=" + file;
    ASSERT_EQ(run_cli(make({"serve", "--requests=20", "--load=500", json_arg.c_str()}),
                      out, err),
              0)
        << err.str();
  }
  unsetenv("SCC_TESTBED_SCALE");
  std::ostringstream table, err;
  ASSERT_EQ(run_cli(make({"report", file.c_str()}), table, err), 0) << err.str();
  EXPECT_NE(table.str().find("cli_serve_report.json"), std::string::npos);
  EXPECT_NE(table.str().find("serve"), std::string::npos);
}

TEST(CliCluster, TableRunSurvivesInjectedFaults) {
  setenv("SCC_TESTBED_SCALE", "0.05", 1);
  std::ostringstream out, err;
  const int rc = run_cli(make({"cluster", "--chips=3", "--requests=30", "--load=2000",
                               "--crash=1:0.02", "--tile-kill=0:7:0.01",
                               "--job-failure-rate=0.2", "--log"}),
                         out, err);
  unsetenv("SCC_TESTBED_SCALE");
  ASSERT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("availability"), std::string::npos);
  EXPECT_NE(out.str().find("chip_crash"), std::string::npos);  // --log lines
  EXPECT_NE(out.str().find("tile_kill"), std::string::npos);
}

TEST(CliCluster, JsonValidatesAndFaultSeedControlsDeterminism) {
  setenv("SCC_TESTBED_SCALE", "0.05", 1);
  const auto run_once = [&](const char* fault_seed) {
    std::ostringstream out, err;
    EXPECT_EQ(run_cli(make({"cluster", "--chips=2", "--requests=20", "--load=1000",
                            "--crash-rate=0.5", "--crash-horizon=0.05",
                            "--job-failure-rate=0.3", fault_seed, "--json"}),
                      out, err),
              0)
        << err.str();
    return out.str();
  };
  const std::string a = run_once("--fault-seed=7");
  const std::string b = run_once("--fault-seed=7");
  const std::string c = run_once("--fault-seed=8");
  unsetenv("SCC_TESTBED_SCALE");
  EXPECT_EQ(a, b);  // byte-identical replay, fault log included
  EXPECT_NE(a, c);
  const auto doc = obs::Json::parse(a);
  EXPECT_TRUE(obs::validate_report(doc).empty());
  EXPECT_EQ(doc.at("kind").as_string(), "cluster");
  EXPECT_TRUE(doc.has("fault_log"));
  EXPECT_TRUE(doc.has("dead_letters"));
}

TEST(CliCluster, BadFaultSpecsRejected) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(make({"cluster", "--crash=banana"}), out, err), 1);
  EXPECT_NE(err.str().find("error:"), std::string::npos);
  std::ostringstream out2, err2;
  EXPECT_EQ(run_cli(make({"cluster", "--tile-kill=0:7"}), out2, err2), 1);
  std::ostringstream out3, err3;
  EXPECT_EQ(run_cli(make({"cluster", "--chips=0"}), out3, err3), 1);
}

TEST(CliCluster, FaultPlanFileDrivesRecoveryScenarioDeterministically) {
  const std::string plan_path = temp_path("cli_fault_plan.json");
  {
    std::ofstream plan(plan_path);
    plan << R"({
      "seed": 99, "chips_per_domain": 2,
      "restart_downtime_seconds": 0.004, "restart_jitter_fraction": 0.25,
      "events": [
        {"kind": "chip_crash", "chip": 1, "seconds": 0.004},
        {"kind": "domain_outage", "domain": 1, "seconds": 0.012}
      ]})";
  }
  setenv("SCC_TESTBED_SCALE", "0.05", 1);
  const auto run_once = [&]() {
    std::ostringstream out, err;
    const std::string plan_arg = "--fault-plan=" + plan_path;
    EXPECT_EQ(run_cli(make({"cluster", "--chips=4", "--requests=80", "--load=3000",
                            plan_arg.c_str(), "--json"}),
                      out, err),
              0)
        << err.str();
    return out.str();
  };
  const std::string a = run_once();
  const std::string b = run_once();
  unsetenv("SCC_TESTBED_SCALE");
  EXPECT_EQ(a, b);  // file-driven scenarios replay byte for byte

  const auto doc = obs::Json::parse(a);
  EXPECT_TRUE(obs::validate_report(doc).empty());
  // The file's knobs made it through: the crashed chip restarts, and the
  // domain outage took both chips of domain 1 down.
  EXPECT_EQ(doc.at("config").at("chips_per_domain").as_int(), 2);
  EXPECT_EQ(doc.at("config").at("fault_seed").as_int(), 99);
  EXPECT_GE(doc.at("result").at("restarts").as_int(), 1);
  EXPECT_EQ(doc.at("result").at("domain_outages").as_int(), 1);
  bool saw_restart = false, saw_outage = false;
  const obs::Json& log = doc.at("fault_log");
  for (std::size_t i = 0; i < log.size(); ++i) {
    const std::string& kind = log.at(i).at("kind").as_string();
    saw_restart = saw_restart || kind == "chip_restart";
    saw_outage = saw_outage || kind == "domain_outage";
  }
  EXPECT_TRUE(saw_restart);
  EXPECT_TRUE(saw_outage);
}

TEST(CliCluster, FaultPlanFileErrorsRejected) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(make({"cluster", "--fault-plan=/nonexistent/plan.json"}), out, err), 1);
  EXPECT_NE(err.str().find("error:"), std::string::npos);

  const std::string bad_path = temp_path("cli_bad_plan.json");
  {
    std::ofstream plan(bad_path);
    plan << R"({"events": [{"kind": "warp_core_breach", "seconds": 1}]})";
  }
  std::ostringstream out2, err2;
  const std::string plan_arg = "--fault-plan=" + bad_path;
  EXPECT_EQ(run_cli(make({"cluster", plan_arg.c_str()}), out2, err2), 1);
  EXPECT_NE(err2.str().find("error:"), std::string::npos);
}

TEST(CliJson, ReportToleratesUnknownTopLevelFields) {
  const std::string path = generate_matrix("cli_report_fwd.mtx");
  const std::string file = temp_path("cli_report_fwd.json");
  {
    std::ostringstream out, err;
    const std::string matrix_arg = "--matrix=" + path;
    const std::string json_arg = "--json=" + file;
    ASSERT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), json_arg.c_str()}), out, err),
              0)
        << err.str();
  }
  // A future producer adds top-level keys: the aggregator must not care.
  auto doc = obs::Json::parse([&] {
    std::ifstream in(file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }());
  doc.set("added_in_v7", "ignored");
  std::ofstream(file) << doc.dump(2) << "\n";
  std::ostringstream table, err;
  ASSERT_EQ(run_cli(make({"report", file.c_str()}), table, err), 0) << err.str();
  EXPECT_NE(table.str().find("cli_report_fwd.json"), std::string::npos);
}

TEST(CliJson, AnalyzeEmitsAnalysisJson) {
  const std::string path = generate_matrix("cli_analyze_json.mtx");
  std::ostringstream out, err;
  const std::string matrix_arg = "--matrix=" + path;
  ASSERT_EQ(run_cli(make({"analyze", matrix_arg.c_str(), "--json"}), out, err), 0)
      << err.str();
  const auto doc = obs::Json::parse(out.str());
  EXPECT_TRUE(obs::validate_report(doc).empty());
  EXPECT_EQ(doc.at("kind").as_string(), "analysis");
}

// --- result integrity: --verify / --sdc-* / --bad-dram / --mem-corrupt ---

TEST(CliIntegrity, SimulateVerifyJsonCarriesIntegritySection) {
  const std::string path = generate_matrix("cli_integ_sim.mtx");
  std::ostringstream out, err;
  const std::string matrix_arg = "--matrix=" + path;
  ASSERT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--cores=4",
                          "--verify=correct", "--json"}),
                    out, err),
            0)
      << err.str();
  const auto doc = obs::Json::parse(out.str());
  EXPECT_TRUE(obs::validate_report(doc).empty());
  EXPECT_EQ(doc.at("run").at("verify").as_string(), "correct");
  const obs::Json& integ = doc.at("integrity");
  EXPECT_EQ(integ.at("verify").as_string(), "correct");
  EXPECT_EQ(integ.at("outcome").as_string(), "clean");
  EXPECT_FALSE(integ.at("injected").as_bool());
  EXPECT_EQ(integ.at("attempts").as_int(), 1);
  EXPECT_GT(integ.at("verify_seconds").as_double(), 0.0);
}

TEST(CliIntegrity, SimulateInjectedSdcIsDetectedAndShownInTheTable) {
  const std::string path = generate_matrix("cli_integ_sdc.mtx");
  const std::string matrix_arg = "--matrix=" + path;
  std::ostringstream out, err;
  // Exponent-range flip at rate 1: the check must catch it.
  ASSERT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--cores=4",
                          "--verify=detect", "--sdc-rate=1", "--sdc-bits=52:62",
                          "--json"}),
                    out, err),
            0)
      << err.str();
  const auto doc = obs::Json::parse(out.str());
  const obs::Json& integ = doc.at("integrity");
  EXPECT_TRUE(integ.at("injected").as_bool());
  EXPECT_EQ(integ.at("outcome").as_string(), "detected");
  EXPECT_GT(integ.at("residual").as_double(), integ.at("tolerance").as_double());

  std::ostringstream table, err2;
  ASSERT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--cores=4",
                          "--verify=correct", "--sdc-rate=1", "--sdc-bits=52:62"}),
                    table, err2),
            0)
      << err2.str();
  EXPECT_NE(table.str().find("verify / outcome"), std::string::npos);
  EXPECT_NE(table.str().find("verify overhead"), std::string::npos);
}

TEST(CliIntegrity, MalformedIntegrityFlagsRejectedWithActionableErrors) {
  const std::string path = generate_matrix("cli_integ_bad.mtx");
  const std::string matrix_arg = "--matrix=" + path;
  const auto expect_error = [&](std::vector<const char*> argv, const std::string& hint) {
    std::ostringstream out, err;
    EXPECT_EQ(run_cli(make(argv), out, err), 1) << hint;
    EXPECT_NE(err.str().find("error:"), std::string::npos) << hint;
    EXPECT_NE(err.str().find(hint), std::string::npos) << err.str();
  };
  expect_error({"simulate", matrix_arg.c_str(), "--verify=on"}, "unknown verify mode");
  expect_error({"simulate", matrix_arg.c_str(), "--sdc-rate=1.5"}, "--sdc-rate");
  expect_error({"simulate", matrix_arg.c_str(), "--sdc-rate=1", "--sdc-bits=52"},
               "--sdc-bits expects MIN:MAX");
  expect_error({"simulate", matrix_arg.c_str(), "--sdc-rate=1", "--sdc-bits=10:99"},
               "--sdc-bits needs 0 <= MIN <= MAX <= 63");
  expect_error({"serve", "--sdc-sticky=-0.1"}, "--sdc-sticky");
  expect_error({"cluster", "--bad-dram=1"}, "--bad-dram");
  expect_error({"cluster", "--bad-dram=1:2.0"}, "--bad-dram");
  expect_error({"cluster", "--quarantine-threshold=-1"}, "--quarantine-threshold");
  expect_error({"resilience", matrix_arg.c_str(), "--mem-corrupt=0:val"},
               "--mem-corrupt expects RANK:REGION:ELEMENT:BIT");
  expect_error({"resilience", matrix_arg.c_str(), "--mem-corrupt=0:nowhere:3:4"},
               "unknown memory region");
  expect_error({"resilience", matrix_arg.c_str(), "--mem-corrupt=99:val:3:4"},
               "out of range");
  expect_error({"resilience", matrix_arg.c_str(), "--mem-corrupt-rate=2"},
               "--mem-corrupt-rate");
}

TEST(CliIntegrity, ResilienceJsonCountsCorruptTransfersAndMemoryFlips) {
  const std::string path = generate_matrix("cli_integ_res.mtx");
  const std::string matrix_arg = "--matrix=" + path;
  std::ostringstream out, err;
  // A planned exponent flip corrupts the delivered product: the command
  // reports the corruption in fault_counts and exits 1 (wrong product).
  EXPECT_EQ(run_cli(make({"resilience", matrix_arg.c_str(), "--ues=4",
                          "--mem-corrupt=1:val:50:52", "--json"}),
                    out, err),
            1)
      << err.str();
  const auto doc = obs::Json::parse(out.str());
  EXPECT_TRUE(obs::validate_report(doc).empty());
  EXPECT_EQ(doc.at("fault_counts").at("mem_corrupts").as_int(), 1);
  EXPECT_FALSE(doc.at("resilience").at("correct").as_bool());
  EXPECT_GT(doc.at("resilience").at("max_error").as_double(), 1e-9);

  // Table mode surfaces both corruption rows.
  std::ostringstream table, err2;
  EXPECT_EQ(run_cli(make({"resilience", matrix_arg.c_str(), "--ues=4",
                          "--mem-corrupt=1:val:50:52"}),
                    table, err2),
            1)
      << err2.str();
  EXPECT_NE(table.str().find("transfer corruptions"), std::string::npos);
  EXPECT_NE(table.str().find("memory corruptions"), std::string::npos);
  EXPECT_NE(table.str().find("WRONG"), std::string::npos);
}

TEST(CliIntegrity, ServeAndClusterJsonCarryIntegritySections) {
  setenv("SCC_TESTBED_SCALE", "0.05", 1);
  std::ostringstream serve_out, serve_err;
  ASSERT_EQ(run_cli(make({"serve", "--requests=20", "--load=500",
                          "--verify=correct", "--sdc-rate=0.5", "--json"}),
                    serve_out, serve_err),
            0)
      << serve_err.str();
  const auto serve_doc = obs::Json::parse(serve_out.str());
  EXPECT_TRUE(obs::validate_report(serve_doc).empty());
  EXPECT_EQ(serve_doc.at("integrity").at("verify").as_string(), "correct");
  EXPECT_GT(serve_doc.at("integrity").at("sdc_corrupted").as_int(), 0);
  EXPECT_EQ(serve_doc.at("integrity").at("sdc_corrupted").as_int(),
            serve_doc.at("integrity").at("sdc_retries").as_int());

  std::ostringstream cluster_out, cluster_err;
  ASSERT_EQ(run_cli(make({"cluster", "--chips=2", "--requests=20", "--load=1000",
                          "--verify=correct", "--bad-dram=0:1:1",
                          "--quarantine-threshold=2", "--json"}),
                    cluster_out, cluster_err),
            0)
      << cluster_err.str();
  unsetenv("SCC_TESTBED_SCALE");
  const auto cluster_doc = obs::Json::parse(cluster_out.str());
  EXPECT_TRUE(obs::validate_report(cluster_doc).empty());
  const obs::Json& integ = cluster_doc.at("integrity");
  EXPECT_EQ(integ.at("verify").as_string(), "correct");
  EXPECT_GT(integ.at("sdc_detected").as_int(), 0);
  EXPECT_EQ(integ.at("sdc_escapes").as_int(), 0);
  EXPECT_EQ(integ.at("quarantines").as_int(), 1);
  EXPECT_EQ(cluster_doc.at("config").at("quarantine_threshold").as_int(), 2);
}

}  // namespace
}  // namespace scc::tools
