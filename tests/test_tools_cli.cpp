#include "cli_commands.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <vector>

#include "sparse/io.hpp"
#include "sparse/properties.hpp"

namespace scc::tools {
namespace {

CliArgs make(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "scc-spmv");
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(Cli, NoCommandPrintsUsage) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(make({}), out, err), 2);
  EXPECT_NE(err.str().find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandRejected) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(make({"frobnicate"}), out, err), 2);
}

TEST(Cli, ErrorsMapToExitOne) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(make({"analyze"}), out, err), 1);  // neither --matrix nor --id
  EXPECT_NE(err.str().find("error:"), std::string::npos);
}

TEST(Cli, GenerateWritesReadableMatrix) {
  const std::string path = temp_path("cli_gen.mtx");
  std::ostringstream out, err;
  const int rc = run_cli(make({"generate", "--family=random", "--n=200", "--row-nnz=5",
                               ("--out=" + path).c_str()}),
                         out, err);
  EXPECT_EQ(rc, 0) << err.str();
  const auto m = sparse::read_matrix_market_file(path);
  EXPECT_EQ(m.rows(), 200);
  EXPECT_EQ(m.nnz(), 200 * 6);
}

TEST(Cli, GenerateEveryFamily) {
  for (const char* family :
       {"banded", "stencil2d", "stencil3d", "fem", "random", "power-law", "circuit"}) {
    const std::string path = temp_path(std::string("cli_fam_") + family + ".mtx");
    std::ostringstream out, err;
    const std::string fam_arg = std::string("--family=") + family;
    const std::string out_arg = "--out=" + path;
    const int rc = run_cli(
        make({"generate", fam_arg.c_str(), "--n=300", "--side=8", "--blocks=20", out_arg.c_str()}),
        out, err);
    EXPECT_EQ(rc, 0) << family << ": " << err.str();
    EXPECT_GT(sparse::read_matrix_market_file(path).nnz(), 0) << family;
  }
}

TEST(Cli, GenerateRejectsUnknownFamily) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(make({"generate", "--family=quantum"}), out, err), 1);
}

TEST(Cli, TestbedExportsById) {
  setenv("SCC_TESTBED_SCALE", "0.05", 1);
  const std::string path = temp_path("cli_testbed.mtx");
  std::ostringstream out, err;
  const std::string out_arg = "--out=" + path;
  const int rc = run_cli(make({"testbed", "--id=24", out_arg.c_str()}), out, err);
  unsetenv("SCC_TESTBED_SCALE");
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("rajat15"), std::string::npos);
  EXPECT_GT(sparse::read_matrix_market_file(path).nnz(), 0);
}

TEST(Cli, AnalyzeReportsProperties) {
  const std::string path = temp_path("cli_analyze.mtx");
  std::ostringstream out, err;
  std::string out_arg = "--out=" + path;
  ASSERT_EQ(run_cli(make({"generate", "--family=banded", "--n=500", out_arg.c_str()}), out,
                    err),
            0);
  std::ostringstream report;
  std::string matrix_arg = "--matrix=" + path;
  ASSERT_EQ(run_cli(make({"analyze", matrix_arg.c_str()}), report, err), 0);
  EXPECT_NE(report.str().find("working set"), std::string::npos);
  EXPECT_NE(report.str().find("500"), std::string::npos);
}

TEST(Cli, SimulateReportsPerformance) {
  const std::string path = temp_path("cli_sim.mtx");
  std::ostringstream out, err;
  std::string out_arg = "--out=" + path;
  ASSERT_EQ(run_cli(make({"generate", "--family=random", "--n=2000", out_arg.c_str()}), out,
                    err),
            0);
  std::ostringstream report;
  std::string matrix_arg = "--matrix=" + path;
  ASSERT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--cores=8", "--mapping=ca",
                          "--conf=1", "--format=hyb"}),
                    report, err),
            0)
      << err.str();
  EXPECT_NE(report.str().find("MFLOPS"), std::string::npos);
  EXPECT_NE(report.str().find("HYB"), std::string::npos);
  EXPECT_NE(report.str().find("contention-aware"), std::string::npos);
}

TEST(Cli, SimulateValidatesOptions) {
  const std::string path = temp_path("cli_sim2.mtx");
  std::ostringstream out, err;
  std::string out_arg = "--out=" + path;
  ASSERT_EQ(run_cli(make({"generate", "--family=banded", "--n=100", out_arg.c_str()}), out,
                    err),
            0);
  std::string matrix_arg = "--matrix=" + path;
  EXPECT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--mapping=bogus"}), out, err), 1);
  EXPECT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--conf=7"}), out, err), 1);
  EXPECT_EQ(run_cli(make({"simulate", matrix_arg.c_str(), "--format=csr5"}), out, err), 1);
}

TEST(Cli, ConvertWithRcmReducesBandwidth) {
  const std::string in_path = temp_path("cli_conv_in.mtx");
  const std::string out_path = temp_path("cli_conv_out.mtx");
  std::ostringstream out, err;
  std::string out_arg = "--out=" + in_path;
  // Circuit matrices are scattered; RCM should tighten them.
  ASSERT_EQ(run_cli(make({"generate", "--family=circuit", "--n=1500", out_arg.c_str()}), out,
                    err),
            0);
  std::ostringstream conv;
  std::string matrix_arg = "--matrix=" + in_path;
  std::string out2_arg = "--out=" + out_path;
  ASSERT_EQ(run_cli(make({"convert", matrix_arg.c_str(), "--rcm", out2_arg.c_str()}), conv,
                    err),
            0)
      << err.str();
  const auto before = sparse::read_matrix_market_file(in_path);
  const auto after = sparse::read_matrix_market_file(out_path);
  EXPECT_EQ(before.nnz(), after.nnz());
  EXPECT_LT(sparse::bandwidth(after), sparse::bandwidth(before));
}

}  // namespace
}  // namespace scc::tools
