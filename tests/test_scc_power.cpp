#include "scc/power.hpp"

#include <gtest/gtest.h>

namespace scc::chip {
namespace {

TEST(Power, Conf0FullSystemMatchesPaperMeasurement) {
  // The paper measures 83.3 W running SpMV on all 48 cores at conf0.
  PowerModel model;
  EXPECT_NEAR(model.full_system_watts(FrequencyConfig::conf0()), 83.3, 0.5);
}

TEST(Power, Conf1FullSystemNearPaperMeasurement) {
  // Conf1 raises the measurement to ~107 W; the model lands within a few %.
  PowerModel model;
  const double watts = model.full_system_watts(FrequencyConfig::conf1());
  EXPECT_GT(watts, 100.0);
  EXPECT_LT(watts, 115.0);
}

TEST(Power, Conf2BetweenConf0AndConf1) {
  PowerModel model;
  const double p0 = model.full_system_watts(FrequencyConfig::conf0());
  const double p1 = model.full_system_watts(FrequencyConfig::conf1());
  const double p2 = model.full_system_watts(FrequencyConfig::conf2());
  EXPECT_GT(p2, p0);
  EXPECT_LT(p2, p1);
}

TEST(Power, MonotoneInActiveCores) {
  PowerModel model;
  const auto freq = FrequencyConfig::conf0();
  double prev = model.chip_watts(freq, 0);
  for (int cores = 2; cores <= 48; cores += 2) {
    const double cur = model.chip_watts(freq, cores);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Power, IdleChipStillDrawsStaticPower) {
  PowerModel model;
  EXPECT_GT(model.chip_watts(FrequencyConfig::conf0(), 0),
            model.config().static_watts);
}

TEST(Power, PerTileFrequencyRaisesPower) {
  PowerModel model;
  auto freq = FrequencyConfig::conf0();
  const double base = model.full_system_watts(freq);
  freq.set_tile_core_mhz(0, 800);
  EXPECT_GT(model.full_system_watts(freq), base);
}

TEST(Power, ActiveCoresValidated) {
  PowerModel model;
  EXPECT_THROW(model.chip_watts(FrequencyConfig::conf0(), -1), std::invalid_argument);
  EXPECT_THROW(model.chip_watts(FrequencyConfig::conf0(), 49), std::invalid_argument);
}

TEST(Power, ConfigValidation) {
  PowerModelConfig bad;
  bad.idle_tile_factor = 1.5;
  EXPECT_THROW(PowerModel{bad}, std::invalid_argument);
  bad = PowerModelConfig{};
  bad.static_watts = -1.0;
  EXPECT_THROW(PowerModel{bad}, std::invalid_argument);
}

TEST(Power, MemoryClockContributionIsolated) {
  // conf1 vs conf2 differ only in memory clock; the delta must equal the
  // memory coefficient times the frequency delta.
  PowerModel model;
  const double delta = model.full_system_watts(FrequencyConfig::conf1()) -
                       model.full_system_watts(FrequencyConfig::conf2());
  EXPECT_NEAR(delta, model.config().memory_watts_per_ghz * (1.066 - 0.8), 1e-9);
}

TEST(Power, VoltageLadderAnchors) {
  EXPECT_NEAR(tile_voltage_for_mhz(533), 0.933, 0.01);
  EXPECT_NEAR(tile_voltage_for_mhz(800), 1.1, 0.01);
  EXPECT_LT(tile_voltage_for_mhz(100), tile_voltage_for_mhz(800));
  EXPECT_THROW(tile_voltage_for_mhz(999), std::invalid_argument);
}

TEST(Power, VoltageScalingLeavesConf0Unchanged) {
  // The DVFS mode is normalized at the 533 MHz calibration point.
  PowerModelConfig dvfs;
  dvfs.model_voltage_scaling = true;
  EXPECT_NEAR(PowerModel(dvfs).full_system_watts(FrequencyConfig::conf0()),
              PowerModel().full_system_watts(FrequencyConfig::conf0()), 1e-9);
}

TEST(Power, VoltageScalingRaisesConf1Power) {
  PowerModelConfig dvfs;
  dvfs.model_voltage_scaling = true;
  const double linear = PowerModel().full_system_watts(FrequencyConfig::conf1());
  const double scaled = PowerModel(dvfs).full_system_watts(FrequencyConfig::conf1());
  // f*V^2 at 800 MHz adds ~39% to the core term over frequency-only scaling.
  EXPECT_GT(scaled, linear + 15.0);
}

TEST(Power, VoltageScalingWouldBreakConf1EfficiencyWin) {
  // The analysis behind the default: the paper's measured conf1 power
  // (~107 W) matches frequency-only scaling; with a full DVFS ladder the
  // conf1 efficiency advantage (speedup ~1.45) would disappear.
  PowerModelConfig dvfs;
  dvfs.model_voltage_scaling = true;
  const PowerModel model(dvfs);
  const double p0 = model.full_system_watts(FrequencyConfig::conf0());
  const double p1 = model.full_system_watts(FrequencyConfig::conf1());
  EXPECT_LT(1.45 / (p1 / p0), 1.0);
}

TEST(Power, EfficiencyOrderingMatchesPaper) {
  // With the paper's speedups (conf1 ~1.45x, conf2 ~1.2x), the model must
  // give conf1 the best MFLOPS/W and conf0 ~ conf2 (Fig 9b).
  PowerModel model;
  const double p0 = model.full_system_watts(FrequencyConfig::conf0());
  const double p1 = model.full_system_watts(FrequencyConfig::conf1());
  const double p2 = model.full_system_watts(FrequencyConfig::conf2());
  const double eff0 = 1.0 / p0;
  const double eff1 = 1.45 / p1;
  const double eff2 = 1.2 / p2;
  EXPECT_GT(eff1, eff0);
  EXPECT_GT(eff1, eff2);
  EXPECT_NEAR(eff2 / eff0, 1.0, 0.10);
}

}  // namespace
}  // namespace scc::chip
