#include "sim/format_traces.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "sim/engine.hpp"

namespace scc::sim {
namespace {

cache::Hierarchy fresh_hierarchy() { return cache::Hierarchy(cache::HierarchyConfig{}); }

sparse::RowBlock whole(const sparse::CsrMatrix& m) {
  return sparse::RowBlock{0, m.rows(), m.nnz()};
}

TEST(EllTrace, ExecutedElementsAreWidthTimesRows) {
  const auto m = gen::random_uniform(500, 7, 1);  // uniform 8-entry rows
  auto h = fresh_hierarchy();
  const auto r = run_ell_trace(m, whole(m), h, nullptr);
  EXPECT_DOUBLE_EQ(r.executed_elements, 8.0 * 500.0);
  // 5 accesses per slot (idx, val, x, y read, y write).
  EXPECT_EQ(h.l1().stats().accesses(), 5u * 8u * 500u);
}

TEST(EllTrace, PaddingExecutesOnSkewedRows) {
  sparse::CooMatrix coo(100, 100);
  for (index_t i = 0; i < 100; ++i) coo.add(i, i, 1.0);
  for (index_t j = 1; j < 50; ++j) coo.add(0, j, 1.0);
  const auto m = sparse::CsrMatrix::from_coo(std::move(coo));
  auto h = fresh_hierarchy();
  const auto r = run_ell_trace(m, whole(m), h, nullptr);
  // Width = 50, so 100*50 slots executed for 149 nonzeros.
  EXPECT_DOUBLE_EQ(r.executed_elements, 5000.0);
}

TEST(EllTrace, BlockLocalWidth) {
  // Per-UE slabs use the *local* maximum row length: a block without the
  // long row must not pay its padding.
  sparse::CooMatrix coo(100, 100);
  for (index_t i = 0; i < 100; ++i) coo.add(i, i, 1.0);
  for (index_t j = 1; j < 50; ++j) coo.add(0, j, 1.0);
  const auto m = sparse::CsrMatrix::from_coo(std::move(coo));
  auto h = fresh_hierarchy();
  const sparse::RowBlock tail{50, 100, 50};
  const auto r = run_ell_trace(m, tail, h, nullptr);
  EXPECT_DOUBLE_EQ(r.executed_elements, 50.0);  // width 1
}

TEST(BcsrTrace, PerfectBlocksNoFill) {
  const auto m = gen::fem_blocks(50, 4, 0, 2);  // pure 4x4 diagonal blocks
  auto h = fresh_hierarchy();
  const auto r = run_bcsr_trace(m, whole(m), 4, h, nullptr);
  EXPECT_DOUBLE_EQ(r.executed_elements, static_cast<double>(m.nnz()));
  EXPECT_DOUBLE_EQ(r.rows_iterated, 50.0);
}

TEST(BcsrTrace, FillInflatesExecutedElements) {
  const auto m = gen::circuit(1000, 1.5, 0.5, 3);  // sparse scattered rows
  auto h = fresh_hierarchy();
  const auto r = run_bcsr_trace(m, whole(m), 4, h, nullptr);
  EXPECT_GT(r.executed_elements, 2.0 * static_cast<double>(m.nnz()));
}

TEST(BcsrTrace, ValidatesBlockSize) {
  const auto m = gen::stencil_2d(4, 4);
  auto h = fresh_hierarchy();
  EXPECT_THROW(run_bcsr_trace(m, whole(m), 0, h, nullptr), std::invalid_argument);
  EXPECT_THROW(run_bcsr_trace(m, whole(m), 17, h, nullptr), std::invalid_argument);
}

TEST(HybTrace, ExecutedBetweenNnzAndEll) {
  const auto m = gen::power_law(800, 8, 1.2, 4);
  auto h1 = fresh_hierarchy();
  const auto ell = run_ell_trace(m, whole(m), h1, nullptr);
  auto h2 = fresh_hierarchy();
  const auto hyb = run_hyb_trace(m, whole(m), 0.33, h2, nullptr);
  EXPECT_GE(hyb.executed_elements, static_cast<double>(m.nnz()) * 0.99);
  EXPECT_LE(hyb.executed_elements, ell.executed_elements + 1e-9);
}

TEST(HybTrace, ZeroSpillEqualsEll) {
  const auto m = gen::power_law(400, 6, 1.1, 5);
  auto h1 = fresh_hierarchy();
  const auto ell = run_ell_trace(m, whole(m), h1, nullptr);
  auto h2 = fresh_hierarchy();
  const auto hyb = run_hyb_trace(m, whole(m), 0.0, h2, nullptr);
  EXPECT_DOUBLE_EQ(hyb.executed_elements, ell.executed_elements);
}

TEST(HybTrace, ValidatesSpill) {
  const auto m = gen::stencil_2d(4, 4);
  auto h = fresh_hierarchy();
  EXPECT_THROW(run_hyb_trace(m, whole(m), 1.0, h, nullptr), std::invalid_argument);
}

TEST(FormatTraces, BlocksOutOfRangeRejected) {
  const auto m = gen::stencil_2d(5, 5);
  auto h = fresh_hierarchy();
  const sparse::RowBlock bad{0, 26, 0};
  EXPECT_THROW(run_ell_trace(m, bad, h, nullptr), std::invalid_argument);
  EXPECT_THROW(run_bcsr_trace(m, bad, 2, h, nullptr), std::invalid_argument);
  EXPECT_THROW(run_hyb_trace(m, bad, 0.3, h, nullptr), std::invalid_argument);
}

TEST(EngineFormats, CsrPassthroughMatchesRun) {
  const Engine engine;
  const auto m = gen::banded(5000, 10, 0.5, 6);
  const double a =
      engine.run(m, 8, chip::MappingPolicy::kDistanceReduction).seconds;
  const double b =
      engine.run_format(m, 8, chip::MappingPolicy::kDistanceReduction,
                        StorageFormat::kCsr)
          .seconds;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(EngineFormats, AllFormatsProducePositivePerformance) {
  const Engine engine;
  const auto m = gen::power_law(3000, 8, 1.2, 7);
  for (auto format : {StorageFormat::kCsr, StorageFormat::kEll, StorageFormat::kBcsr2,
                      StorageFormat::kBcsr4, StorageFormat::kHyb}) {
    const auto r = engine.run_format(m, 8, chip::MappingPolicy::kDistanceReduction, format);
    EXPECT_GT(r.gflops, 0.0) << to_string(format);
  }
}

TEST(EngineFormats, EllPenalizedOnSkewedRows) {
  const Engine engine;
  const auto m = gen::power_law(5000, 12, 0.9, 8);  // heavy-tailed rows
  const double csr =
      engine.run_format(m, 8, chip::MappingPolicy::kDistanceReduction, StorageFormat::kCsr)
          .gflops;
  const double ell =
      engine.run_format(m, 8, chip::MappingPolicy::kDistanceReduction, StorageFormat::kEll)
          .gflops;
  EXPECT_LT(ell, csr);
}

TEST(EngineFormats, BcsrWinsOnPerfectBlocks) {
  const Engine engine;
  auto m = gen::fem_blocks(3000, 4, 0, 9);  // pure 4x4 blocks, ~192k nnz
  const double csr =
      engine.run_format(m, 8, chip::MappingPolicy::kDistanceReduction, StorageFormat::kCsr)
          .gflops;
  const double bcsr =
      engine.run_format(m, 8, chip::MappingPolicy::kDistanceReduction, StorageFormat::kBcsr4)
          .gflops;
  EXPECT_GT(bcsr, csr);
}

TEST(EngineFormats, ToStringNames) {
  EXPECT_EQ(to_string(StorageFormat::kCsr), "CSR");
  EXPECT_EQ(to_string(StorageFormat::kEll), "ELL");
  EXPECT_EQ(to_string(StorageFormat::kBcsr2), "BCSR b=2");
  EXPECT_EQ(to_string(StorageFormat::kBcsr4), "BCSR b=4");
  EXPECT_EQ(to_string(StorageFormat::kHyb), "HYB");
}

}  // namespace
}  // namespace scc::sim
