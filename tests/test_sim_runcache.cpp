// sim::RunCache: content-keyed memoization of Engine::run. The contract is
// (a) the key covers exactly what the simulated numbers depend on -- matrix
// structure, effective core table, spec knobs, engine config -- and nothing
// else, (b) LRU-like (CLOCK/second-chance) eviction with a hard capacity
// bound that holds at any shard count, (c) a hit is a deep copy bit-exact
// versus the cold simulation that produced it -- also after a snapshot
// round trip through disk -- and (d) the lock-free hit path stays sane
// under concurrent readers and writers.
#include "sim/run_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "integrity/integrity.hpp"
#include "obs/trace.hpp"
#include "scc/mapping.hpp"
#include "sim/report.hpp"

namespace scc::sim {
namespace {

sparse::CsrMatrix test_matrix() { return gen::banded(600, 12, 0.5, 7); }

RunResult stub_result(double seconds) {
  RunResult r;
  r.seconds = seconds;
  r.gflops = 1.0 / seconds;
  return r;
}

TEST(RunKey, PolicyAndExplicitCoresShareAnEntry) {
  const auto m = test_matrix();
  const EngineConfig config;
  const auto policy = chip::MappingPolicy::kDistanceReduction;
  RunSpec by_policy;
  by_policy.ue_count = 8;
  by_policy.policy = policy;
  RunSpec by_cores;
  by_cores.cores = chip::map_ues_to_cores(policy, 8);

  // Engine::run resolves the cores before keying, so both spellings hash the
  // same resolved table.
  const RunKey a = run_key(m, config, chip::map_ues_to_cores(policy, 8), by_policy);
  const RunKey b = run_key(m, config, by_cores.cores, by_cores);
  EXPECT_EQ(a, b);
}

TEST(RunKey, EverySpecKnobChangesTheKey) {
  const auto m = test_matrix();
  const EngineConfig config;
  const std::vector<int> cores = {0, 1, 2, 3};
  const RunSpec base;
  const RunKey key = run_key(m, config, cores, base);

  {
    RunSpec s;
    s.format = StorageFormat::kEll;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.reorder = Reordering::kRcmRows;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.variant = SpmvVariant::kCsrNoXMiss;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.forced_hops = 2;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.dead_ranks = {1};
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.detection_seconds = 0.5;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.verify = integrity::VerifyMode::kDetect;
    EXPECT_NE(run_key(m, config, cores, s), key);
    RunSpec correct = s;
    correct.verify = integrity::VerifyMode::kCorrect;
    EXPECT_NE(run_key(m, config, cores, correct), run_key(m, config, cores, s));
  }
  {
    RunSpec s;
    s.sdc.rate = 0.5;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.sdc.sticky_rate = 0.25;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.sdc.seed = 0x1234;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.sdc.min_bit = 40;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.sdc.max_bit = 50;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.sdc_site = 7;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  EXPECT_NE(run_key(m, config, {0, 1, 2}, base), key);
}

TEST(RunKey, CorruptedRunNeverServedFromCleanEntryEitherOrder) {
  // Regression guard for the integrity layer: a run with live SDC injection
  // must never be answered from the clean entry (nor vice versa), and two
  // different injection sites must not collide.
  const auto m = test_matrix();
  RunSpec clean;
  clean.ue_count = 4;
  clean.verify = integrity::VerifyMode::kCorrect;
  RunSpec corrupted = clean;
  corrupted.sdc.rate = 1.0;
  RunSpec other_site = corrupted;
  other_site.sdc_site = 99;

  Engine engine;
  RunCache cache;
  engine.attach_run_cache(&cache);
  const RunResult a = engine.run(m, clean);
  const RunResult b = engine.run(m, corrupted);
  const RunResult c = engine.run(m, other_site);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(a.outcome, integrity::Outcome::kClean);
  EXPECT_NE(b.outcome, integrity::Outcome::kClean);
  // Replays hit their own entries with identical classifications.
  EXPECT_EQ(engine.run(m, corrupted).outcome, b.outcome);
  EXPECT_EQ(engine.run(m, other_site).seconds, c.seconds);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(RunKey, EngineConfigAndMatrixArePartOfTheKey) {
  const auto m = test_matrix();
  const EngineConfig config;
  const std::vector<int> cores = {0, 1};
  const RunSpec spec;
  const RunKey key = run_key(m, config, cores, spec);

  EngineConfig faster;
  faster.freq = chip::FrequencyConfig::conf1();
  EXPECT_NE(run_key(m, faster, cores, spec), key);

  EngineConfig no_l2;
  no_l2.hierarchy.l2_enabled = false;
  EXPECT_NE(run_key(m, no_l2, cores, spec), key);

  EngineConfig cold;
  cold.measure_steady_state = false;
  EXPECT_NE(run_key(m, cold, cores, spec), key);

  const auto other = gen::banded(600, 12, 0.5, 8);  // different structure
  EXPECT_NE(run_key(other, config, cores, spec), key);

  // The recorder never affects the numbers, so it must not affect the key.
  obs::Recorder recorder;
  RunSpec observed;
  observed.recorder = &recorder;
  EXPECT_EQ(run_key(m, config, cores, observed), key);
}

TEST(RunCache, LookupMissesThenHitsAndCounts) {
  RunCache cache(4);
  const RunKey key{1, 2};
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, stub_result(0.5));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->seconds, 0.5);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RunCache, EvictsLeastRecentlyUsedAndLookupRefreshesRecency) {
  RunCache cache(2);
  const RunKey k1{1, 0}, k2{2, 0}, k3{3, 0};
  cache.insert(k1, stub_result(1.0));
  cache.insert(k2, stub_result(2.0));
  // Touch k1 so k2 becomes the LRU entry.
  EXPECT_TRUE(cache.lookup(k1).has_value());
  cache.insert(k3, stub_result(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_TRUE(cache.lookup(k3).has_value());
  EXPECT_FALSE(cache.lookup(k2).has_value());
}

TEST(RunCache, CapacityBoundHoldsUnderManyInserts) {
  RunCache cache(3);
  for (std::uint64_t i = 0; i < 50; ++i) {
    cache.insert(RunKey{i, i}, stub_result(static_cast<double>(i + 1)));
    EXPECT_LE(cache.size(), 3u);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.capacity(), 3u);
  // The three newest survive.
  EXPECT_TRUE(cache.lookup(RunKey{49, 49}).has_value());
  EXPECT_TRUE(cache.lookup(RunKey{47, 47}).has_value());
  EXPECT_FALSE(cache.lookup(RunKey{0, 0}).has_value());
}

TEST(RunCache, ReinsertRefreshesInsteadOfDuplicating) {
  RunCache cache(2);
  const RunKey key{7, 7};
  cache.insert(key, stub_result(1.0));
  cache.insert(key, stub_result(4.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(key)->seconds, 4.0);
}

TEST(RunCache, RejectsZeroCapacity) { EXPECT_THROW(RunCache cache(0), std::invalid_argument); }

TEST(RunCache, EngineHitIsBitExactVersusColdRun) {
  const auto m = test_matrix();
  Engine cached;
  RunCache cache;
  cached.attach_run_cache(&cache);
  const Engine plain;

  RunSpec spec;
  spec.ue_count = 6;
  spec.policy = chip::MappingPolicy::kContentionAware;

  const RunResult cold = cached.run(m, spec);   // miss, fills the cache
  const RunResult warm = cached.run(m, spec);   // hit, deep copy
  const RunResult truth = plain.run(m, spec);   // never memoized
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  const std::string cold_json = run_report_json(cached, spec, cold).dump(2);
  EXPECT_EQ(cold_json, run_report_json(cached, spec, warm).dump(2));
  EXPECT_EQ(run_report_json(plain, spec, cold).dump(2),
            run_report_json(plain, spec, truth).dump(2));
}

TEST(RunCache, DegradedRunsMemoizeUnderTheirOwnKey) {
  const auto m = test_matrix();
  Engine engine;
  RunCache cache;
  engine.attach_run_cache(&cache);

  RunSpec healthy;
  healthy.ue_count = 4;
  RunSpec degraded = healthy;
  degraded.dead_ranks = {2};

  const RunResult h = engine.run(m, healthy);
  const RunResult d = engine.run(m, degraded);
  EXPECT_EQ(cache.misses(), 2u);  // distinct keys, no false sharing
  EXPECT_NE(h.seconds, d.seconds);
  EXPECT_EQ(engine.run(m, degraded).seconds, d.seconds);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(RunCache, DegradedRunNeverServedFromHealthyEntryEitherOrder) {
  // Regression guard for the cluster's failover path: a request restated to
  // the degraded dead-rank protocol must never be answered from the healthy
  // run's cache entry (nor vice versa), regardless of which was run first.
  const auto m = test_matrix();
  RunSpec healthy;
  healthy.ue_count = 4;
  RunSpec degraded = healthy;
  degraded.dead_ranks = {1, 3};

  const Engine plain;
  const RunResult healthy_truth = plain.run(m, healthy);
  const RunResult degraded_truth = plain.run(m, degraded);
  ASSERT_NE(healthy_truth.seconds, degraded_truth.seconds);

  for (const bool healthy_first : {true, false}) {
    Engine engine;
    RunCache cache;
    engine.attach_run_cache(&cache);
    const RunResult first =
        engine.run(m, healthy_first ? healthy : degraded);
    const RunResult second =
        engine.run(m, healthy_first ? degraded : healthy);
    EXPECT_EQ(cache.misses(), 2u) << "order healthy_first=" << healthy_first;
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ((healthy_first ? first : second).seconds, healthy_truth.seconds);
    EXPECT_EQ((healthy_first ? second : first).seconds, degraded_truth.seconds);
  }
}

TEST(RunCache, ReorderedRunNeverServedFromUnreorderedEntryEitherOrder) {
  // Regression guard for the autotuner's reorder candidates: a kRcmRows run
  // must never be answered from the kNone entry (nor vice versa), whichever
  // was priced first -- the reorder knob is part of the key.
  const auto m = gen::power_law(600, 8, 1.9, 5);
  RunSpec plain_spec;
  plain_spec.ue_count = 4;
  RunSpec reordered = plain_spec;
  reordered.reorder = Reordering::kRcmRows;

  const Engine plain;
  const RunResult plain_truth = plain.run(m, plain_spec);
  const RunResult reordered_truth = plain.run(m, reordered);
  ASSERT_NE(plain_truth.seconds, reordered_truth.seconds);

  for (const bool plain_first : {true, false}) {
    Engine engine;
    RunCache cache;
    engine.attach_run_cache(&cache);
    const RunResult first = engine.run(m, plain_first ? plain_spec : reordered);
    const RunResult second = engine.run(m, plain_first ? reordered : plain_spec);
    EXPECT_EQ(cache.misses(), 2u) << "order plain_first=" << plain_first;
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ((plain_first ? first : second).seconds, plain_truth.seconds);
    EXPECT_EQ((plain_first ? second : first).seconds, reordered_truth.seconds);
    // Replays hit their own entries bit-exactly.
    EXPECT_EQ(engine.run(m, reordered).seconds, reordered_truth.seconds);
    EXPECT_EQ(cache.hits(), 1u);
  }
}

TEST(RunCache, ColdAndSteadyStateEnginesShareACacheWithoutCollisions) {
  // The cluster's warm-up transient prices first-touch jobs through a second
  // cold-cache engine that shares the pool's RunCache with the steady-state
  // engine; measure_steady_state is part of the key, so the two populations
  // must coexist with no cross-talk.
  const auto m = test_matrix();
  EngineConfig warm_config;
  EngineConfig cold_config;
  cold_config.measure_steady_state = false;

  RunCache cache;
  Engine warm(warm_config);
  Engine cold(cold_config);
  warm.attach_run_cache(&cache);
  cold.attach_run_cache(&cache);

  RunSpec spec;
  spec.ue_count = 6;
  const RunResult w = warm.run(m, spec);
  const RunResult c = cold.run(m, spec);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  // A cold first traversal is strictly slower than the steady-state window.
  EXPECT_GT(c.seconds, w.seconds);
  // Replays hit their own entries bit-exactly.
  EXPECT_EQ(warm.run(m, spec).seconds, w.seconds);
  EXPECT_EQ(cold.run(m, spec).seconds, c.seconds);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

// ---- Sharding ----

TEST(RunCacheSharded, ShardCountIsInvariantForLookupResults) {
  // The same insert/lookup stream against 1, 4 and 16 shards returns the
  // same values -- sharding is a concurrency detail, not a semantic one.
  // Capacity is generous (64 slots even in the smallest shard) so no
  // distribution of the 64 keys can overflow a shard and evict.
  constexpr std::size_t kKeys = 64;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    RunCacheConfig config;
    config.capacity = 1024;
    config.shards = shards;
    RunCache cache(config);
    EXPECT_EQ(cache.shard_count(), shards);
    EXPECT_EQ(cache.capacity(), 1024u);
    for (std::size_t i = 0; i < kKeys; ++i) {
      cache.insert(RunKey{i * 2654435761ULL + 17, ~i * 0x9e3779b97f4a7c15ULL},
                   stub_result(1.0 + static_cast<double>(i)));
    }
    EXPECT_EQ(cache.size(), kKeys);
    for (std::size_t i = 0; i < kKeys; ++i) {
      const auto hit = cache.lookup(RunKey{i * 2654435761ULL + 17, ~i * 0x9e3779b97f4a7c15ULL});
      ASSERT_TRUE(hit.has_value()) << "shards=" << shards << " key " << i;
      EXPECT_EQ(hit->seconds, 1.0 + static_cast<double>(i));
    }
    EXPECT_EQ(cache.hits(), kKeys);
  }
}

TEST(RunCacheSharded, ShardCountRoundsUpToAPowerOfTwo) {
  RunCacheConfig config;
  config.capacity = 64;
  config.shards = 3;
  const RunCache cache(config);
  EXPECT_EQ(cache.shard_count(), 4u);
}

TEST(RunCacheSharded, AutoShardingNeverExceedsTheCapacity) {
  for (const std::size_t capacity : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                                     std::size_t{128}, std::size_t{1000}}) {
    RunCacheConfig config;
    config.capacity = capacity;
    const RunCache cache(config);
    EXPECT_GE(cache.shard_count(), 1u);
    EXPECT_LE(cache.shard_count(), capacity);
    EXPECT_EQ(cache.capacity(), capacity);
  }
}

TEST(RunCacheSharded, StatsAggregatePerShardCounters) {
  // 16 slots per shard: even if all 8 keys land in one shard nothing evicts.
  RunCacheConfig config;
  config.capacity = 64;
  config.shards = 4;
  RunCache cache(config);
  for (std::size_t i = 0; i < 8; ++i) {
    cache.insert(RunKey{i, ~i}, stub_result(1.0));
  }
  for (std::size_t i = 0; i < 8; ++i) cache.lookup(RunKey{i, ~i});        // hits
  for (std::size_t i = 100; i < 104; ++i) cache.lookup(RunKey{i, ~i});    // misses

  const RunCache::Stats stats = cache.stats();
  ASSERT_EQ(stats.per_shard.size(), 4u);
  std::uint64_t hits = 0, misses = 0;
  std::size_t size = 0, capacity = 0;
  for (const RunCache::ShardStats& shard : stats.per_shard) {
    hits += shard.hits;
    misses += shard.misses;
    size += shard.size;
    capacity += shard.capacity;
    EXPECT_GE(shard.load_factor(), 0.0);
    EXPECT_LE(shard.load_factor(), 1.0);
  }
  EXPECT_EQ(stats.total.hits, 8u);
  EXPECT_EQ(stats.total.misses, 4u);
  EXPECT_EQ(stats.total.size, 8u);
  EXPECT_EQ(stats.total.capacity, 64u);
  // The totals are exactly the shard sums -- per-shard atomics are the only
  // counters, so nothing is double-counted however many engines share us.
  EXPECT_EQ(stats.total.hits, hits);
  EXPECT_EQ(stats.total.misses, misses);
  EXPECT_EQ(stats.total.size, size);
  EXPECT_EQ(stats.total.capacity, capacity);
}

TEST(RunCacheSharded, ConcurrentHitsAndInsertsStaySane) {
  // TSan-facing hammer: readers on the lock-free hit path race writers
  // inserting fresh and overlapping keys. Values must never tear -- every
  // hit returns one of the exact payloads some writer published.
  RunCacheConfig config;
  config.capacity = 32;
  config.shards = 4;
  RunCache cache(config);
  constexpr int kWriters = 2, kReaders = 4, kRounds = 400;

  std::vector<std::thread> threads;
  std::atomic<bool> torn{false};
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&cache, w] {
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t i = static_cast<std::size_t>(round % 48);
        cache.insert(RunKey{i, i * 31 + static_cast<std::size_t>(w)},
                     stub_result(static_cast<double>(i + 1)));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&cache, &torn, r] {
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t i = static_cast<std::size_t>((round + r) % 48);
        for (std::size_t w = 0; w < kWriters; ++w) {
          const auto hit = cache.lookup(RunKey{i, i * 31 + w});
          if (hit.has_value() && hit->seconds != static_cast<double>(i + 1)) torn = true;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_LE(cache.size(), cache.capacity());
}

// ---- Persistence ----

/// Temp snapshot path unique per test; removed on destruction.
struct SnapshotFile {
  explicit SnapshotFile(const char* name)
      : path((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove(path);
  }
  ~SnapshotFile() {
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".tmp");
  }
  std::string path;
};

TEST(RunCachePersist, SnapshotRoundTripsBitExactEngineResults) {
  const auto m = test_matrix();
  Engine engine;
  auto cache = std::make_shared<RunCache>(RunCacheConfig{8, 2, ""});
  engine.attach_run_cache(cache);
  RunSpec spec;
  spec.ue_count = 6;
  const RunResult truth = engine.run(m, spec);

  RunSpec degraded = spec;
  degraded.ue_count = 8;
  degraded.dead_ranks = {3};
  const RunResult degraded_truth = engine.run(m, degraded);

  const SnapshotFile file("scc_runcache_roundtrip.snapshot");
  ASSERT_TRUE(cache->save_snapshot(file.path));

  RunCache restored(RunCacheConfig{8, 4, ""});  // different sharding on purpose
  ASSERT_TRUE(restored.load_snapshot(file.path));
  EXPECT_EQ(restored.size(), cache->size());

  Engine replay;
  replay.attach_run_cache(std::shared_ptr<RunCache>(std::shared_ptr<RunCache>(), &restored));
  const RunResult warm = replay.run(m, spec);
  const RunResult warm_degraded = replay.run(m, degraded);
  EXPECT_EQ(restored.hits(), 2u);
  EXPECT_EQ(restored.misses(), 0u);
  // Bit-exact through serialization: the full report, not just the headline.
  EXPECT_EQ(run_report_json(replay, spec, warm).dump(2),
            run_report_json(replay, spec, truth).dump(2));
  EXPECT_EQ(warm_degraded.seconds, degraded_truth.seconds);
  EXPECT_EQ(warm_degraded.reshipped_bytes, degraded_truth.reshipped_bytes);
  EXPECT_EQ(warm_degraded.recovery_seconds, degraded_truth.recovery_seconds);
}

TEST(RunCachePersist, ConfigPathLoadsOnConstructionAndSavesOnDestruction) {
  const SnapshotFile file("scc_runcache_lifecycle.snapshot");
  const RunKey key{42, 43};
  {
    RunCache cache(RunCacheConfig{4, 1, file.path});
    cache.insert(key, stub_result(0.25));
  }  // destructor snapshots
  ASSERT_TRUE(std::filesystem::exists(file.path));
  {
    RunCache cache(RunCacheConfig{4, 2, file.path});
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->seconds, 0.25);
  }
}

TEST(RunCachePersist, MissingCorruptTruncatedAndStaleSnapshotsAreRejected) {
  const SnapshotFile file("scc_runcache_invalid.snapshot");
  RunCache cache(RunCacheConfig{4, 1, ""});

  // Missing file: clean refusal, cache untouched.
  EXPECT_FALSE(cache.load_snapshot(file.path));

  cache.insert(RunKey{7, 8}, stub_result(0.5));
  ASSERT_TRUE(cache.save_snapshot(file.path));

  const auto slurp = [&file] {
    std::ifstream in(file.path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  };
  const auto dump = [&file](const std::string& bytes) {
    std::ofstream out(file.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  const std::string good = slurp();
  ASSERT_GT(good.size(), 24u);

  // Bad magic.
  std::string bad = good;
  bad[0] ^= 0x5a;
  dump(bad);
  RunCache victim(RunCacheConfig{4, 1, ""});
  EXPECT_FALSE(victim.load_snapshot(file.path));
  EXPECT_EQ(victim.size(), 0u);

  // Version mismatch (u32 after the 8-byte magic).
  bad = good;
  bad[8] = static_cast<char>(bad[8] + 1);
  dump(bad);
  EXPECT_FALSE(victim.load_snapshot(file.path));
  EXPECT_EQ(victim.size(), 0u);

  // Payload corruption: flip one byte past the header, checksum catches it.
  bad = good;
  bad[good.size() - 3] ^= 0x5a;
  dump(bad);
  EXPECT_FALSE(victim.load_snapshot(file.path));
  EXPECT_EQ(victim.size(), 0u);

  // Truncation.
  dump(good.substr(0, good.size() / 2));
  EXPECT_FALSE(victim.load_snapshot(file.path));
  EXPECT_EQ(victim.size(), 0u);

  // The intact snapshot still loads after all the rejections.
  dump(good);
  EXPECT_TRUE(victim.load_snapshot(file.path));
  EXPECT_EQ(victim.size(), 1u);
  EXPECT_EQ(victim.lookup(RunKey{7, 8})->seconds, 0.5);
}

TEST(RunCachePersist, GenerationAdvancesOnSaveAndResumesPastSnapshots) {
  const SnapshotFile file("scc_runcache_generation.snapshot");
  RunCache cache(RunCacheConfig{8, 1, ""});
  EXPECT_EQ(cache.generation(), 1u);
  cache.insert(RunKey{1, 1}, stub_result(0.5));
  ASSERT_TRUE(cache.save_snapshot(file.path));
  EXPECT_EQ(cache.generation(), 2u);  // a save closes the epoch
  cache.insert(RunKey{2, 2}, stub_result(0.75));
  ASSERT_TRUE(cache.save_snapshot(file.path));
  EXPECT_EQ(cache.generation(), 3u);

  // Loading resumes past the newest persisted epoch, so entries inserted
  // after a restore always sort as fresher than everything on disk.
  RunCache restored(RunCacheConfig{8, 1, ""});
  ASSERT_TRUE(restored.load_snapshot(file.path));
  EXPECT_EQ(restored.generation(), 3u);
  EXPECT_EQ(restored.size(), 2u);
}

TEST(RunCachePersist, ByteCapCompactsOldestGenerationsFirst) {
  const SnapshotFile file("scc_runcache_compaction.snapshot");

  // Measure the header and per-entry footprint from uncapped snapshots so
  // the cap below is exact whatever the serialization layout is. Stub
  // results all serialize to the same size.
  std::size_t one_entry = 0, two_entries = 0;
  {
    RunCache probe(RunCacheConfig{8, 1, ""});
    probe.insert(RunKey{1, 1}, stub_result(1.0));
    ASSERT_TRUE(probe.save_snapshot(file.path));
    one_entry = std::filesystem::file_size(file.path);
    probe.insert(RunKey{2, 2}, stub_result(2.0));
    ASSERT_TRUE(probe.save_snapshot(file.path));
    two_entries = std::filesystem::file_size(file.path);
  }
  const std::size_t entry_bytes = two_entries - one_entry;
  ASSERT_GT(entry_bytes, 0u);

  // Four entries across two generations, capped to fit only two: the two
  // newer-generation entries survive, the older epoch is dropped.
  RunCacheConfig config{16, 1, ""};
  config.max_snapshot_bytes = two_entries;
  RunCache cache(config);
  EXPECT_EQ(cache.max_snapshot_bytes(), two_entries);
  cache.insert(RunKey{10, 0}, stub_result(1.0));
  cache.insert(RunKey{11, 0}, stub_result(2.0));
  ASSERT_TRUE(cache.save_snapshot(file.path));  // gen 1 persisted, epoch -> 2
  cache.insert(RunKey{20, 0}, stub_result(3.0));
  cache.insert(RunKey{21, 0}, stub_result(4.0));
  ASSERT_TRUE(cache.save_snapshot(file.path));
  EXPECT_LE(std::filesystem::file_size(file.path), two_entries);

  RunCache restored(RunCacheConfig{16, 1, ""});
  ASSERT_TRUE(restored.load_snapshot(file.path));
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_FALSE(restored.lookup(RunKey{10, 0}).has_value());
  EXPECT_FALSE(restored.lookup(RunKey{11, 0}).has_value());
  EXPECT_TRUE(restored.lookup(RunKey{20, 0}).has_value());
  EXPECT_TRUE(restored.lookup(RunKey{21, 0}).has_value());

  // A lookup refreshes its entry's generation, so a hot old entry outlives
  // a cold newer one under the same cap.
  RunCacheConfig hot_config{16, 1, ""};
  hot_config.max_snapshot_bytes = one_entry;
  RunCache hot(hot_config);
  hot.insert(RunKey{30, 0}, stub_result(1.0));
  ASSERT_TRUE(hot.save_snapshot(file.path));  // epoch -> 2
  hot.insert(RunKey{31, 0}, stub_result(2.0));
  ASSERT_TRUE(hot.save_snapshot(file.path));  // epoch -> 3
  EXPECT_TRUE(hot.lookup(RunKey{30, 0}).has_value());  // refresh to gen 3
  ASSERT_TRUE(hot.save_snapshot(file.path));
  RunCache survivor(RunCacheConfig{16, 1, ""});
  ASSERT_TRUE(survivor.load_snapshot(file.path));
  EXPECT_EQ(survivor.size(), 1u);
  EXPECT_TRUE(survivor.lookup(RunKey{30, 0}).has_value());
}

TEST(RunCachePersist, UnboundedCapKeepsEveryEntry) {
  const SnapshotFile file("scc_runcache_uncapped.snapshot");
  RunCache cache(RunCacheConfig{64, 1, ""});  // max_snapshot_bytes defaults to 0
  for (std::uint64_t i = 0; i < 20; ++i) cache.insert(RunKey{i, i}, stub_result(1.0));
  ASSERT_TRUE(cache.save_snapshot(file.path));
  RunCache restored(RunCacheConfig{64, 1, ""});
  ASSERT_TRUE(restored.load_snapshot(file.path));
  EXPECT_EQ(restored.size(), 20u);
}

}  // namespace
}  // namespace scc::sim
