// sim::RunCache: content-keyed memoization of Engine::run. The contract is
// (a) the key covers exactly what the simulated numbers depend on -- matrix
// structure, effective core table, spec knobs, engine config -- and nothing
// else, (b) LRU eviction with a hard capacity bound, and (c) a hit is a deep
// copy bit-exact versus the cold simulation that produced it.
#include "sim/run_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gen/generators.hpp"
#include "obs/trace.hpp"
#include "scc/mapping.hpp"
#include "sim/report.hpp"

namespace scc::sim {
namespace {

sparse::CsrMatrix test_matrix() { return gen::banded(600, 12, 0.5, 7); }

RunResult stub_result(double seconds) {
  RunResult r;
  r.seconds = seconds;
  r.gflops = 1.0 / seconds;
  return r;
}

TEST(RunKey, PolicyAndExplicitCoresShareAnEntry) {
  const auto m = test_matrix();
  const EngineConfig config;
  const auto policy = chip::MappingPolicy::kDistanceReduction;
  RunSpec by_policy;
  by_policy.ue_count = 8;
  by_policy.policy = policy;
  RunSpec by_cores;
  by_cores.cores = chip::map_ues_to_cores(policy, 8);

  // Engine::run resolves the cores before keying, so both spellings hash the
  // same resolved table.
  const RunKey a = run_key(m, config, chip::map_ues_to_cores(policy, 8), by_policy);
  const RunKey b = run_key(m, config, by_cores.cores, by_cores);
  EXPECT_EQ(a, b);
}

TEST(RunKey, EverySpecKnobChangesTheKey) {
  const auto m = test_matrix();
  const EngineConfig config;
  const std::vector<int> cores = {0, 1, 2, 3};
  const RunSpec base;
  const RunKey key = run_key(m, config, cores, base);

  {
    RunSpec s;
    s.format = StorageFormat::kEll;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.variant = SpmvVariant::kCsrNoXMiss;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.forced_hops = 2;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.dead_ranks = {1};
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  {
    RunSpec s;
    s.detection_seconds = 0.5;
    EXPECT_NE(run_key(m, config, cores, s), key);
  }
  EXPECT_NE(run_key(m, config, {0, 1, 2}, base), key);
}

TEST(RunKey, EngineConfigAndMatrixArePartOfTheKey) {
  const auto m = test_matrix();
  const EngineConfig config;
  const std::vector<int> cores = {0, 1};
  const RunSpec spec;
  const RunKey key = run_key(m, config, cores, spec);

  EngineConfig faster;
  faster.freq = chip::FrequencyConfig::conf1();
  EXPECT_NE(run_key(m, faster, cores, spec), key);

  EngineConfig no_l2;
  no_l2.hierarchy.l2_enabled = false;
  EXPECT_NE(run_key(m, no_l2, cores, spec), key);

  EngineConfig cold;
  cold.measure_steady_state = false;
  EXPECT_NE(run_key(m, cold, cores, spec), key);

  const auto other = gen::banded(600, 12, 0.5, 8);  // different structure
  EXPECT_NE(run_key(other, config, cores, spec), key);

  // The recorder never affects the numbers, so it must not affect the key.
  obs::Recorder recorder;
  RunSpec observed;
  observed.recorder = &recorder;
  EXPECT_EQ(run_key(m, config, cores, observed), key);
}

TEST(RunCache, LookupMissesThenHitsAndCounts) {
  RunCache cache(4);
  const RunKey key{1, 2};
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, stub_result(0.5));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->seconds, 0.5);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RunCache, EvictsLeastRecentlyUsedAndLookupRefreshesRecency) {
  RunCache cache(2);
  const RunKey k1{1, 0}, k2{2, 0}, k3{3, 0};
  cache.insert(k1, stub_result(1.0));
  cache.insert(k2, stub_result(2.0));
  // Touch k1 so k2 becomes the LRU entry.
  EXPECT_TRUE(cache.lookup(k1).has_value());
  cache.insert(k3, stub_result(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_TRUE(cache.lookup(k3).has_value());
  EXPECT_FALSE(cache.lookup(k2).has_value());
}

TEST(RunCache, CapacityBoundHoldsUnderManyInserts) {
  RunCache cache(3);
  for (std::uint64_t i = 0; i < 50; ++i) {
    cache.insert(RunKey{i, i}, stub_result(static_cast<double>(i + 1)));
    EXPECT_LE(cache.size(), 3u);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.capacity(), 3u);
  // The three newest survive.
  EXPECT_TRUE(cache.lookup(RunKey{49, 49}).has_value());
  EXPECT_TRUE(cache.lookup(RunKey{47, 47}).has_value());
  EXPECT_FALSE(cache.lookup(RunKey{0, 0}).has_value());
}

TEST(RunCache, ReinsertRefreshesInsteadOfDuplicating) {
  RunCache cache(2);
  const RunKey key{7, 7};
  cache.insert(key, stub_result(1.0));
  cache.insert(key, stub_result(4.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(key)->seconds, 4.0);
}

TEST(RunCache, RejectsZeroCapacity) { EXPECT_THROW(RunCache cache(0), std::invalid_argument); }

TEST(RunCache, EngineHitIsBitExactVersusColdRun) {
  const auto m = test_matrix();
  Engine cached;
  RunCache cache;
  cached.attach_run_cache(&cache);
  const Engine plain;

  RunSpec spec;
  spec.ue_count = 6;
  spec.policy = chip::MappingPolicy::kContentionAware;

  const RunResult cold = cached.run(m, spec);   // miss, fills the cache
  const RunResult warm = cached.run(m, spec);   // hit, deep copy
  const RunResult truth = plain.run(m, spec);   // never memoized
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  const std::string cold_json = run_report_json(cached, spec, cold).dump(2);
  EXPECT_EQ(cold_json, run_report_json(cached, spec, warm).dump(2));
  EXPECT_EQ(run_report_json(plain, spec, cold).dump(2),
            run_report_json(plain, spec, truth).dump(2));
}

TEST(RunCache, DegradedRunsMemoizeUnderTheirOwnKey) {
  const auto m = test_matrix();
  Engine engine;
  RunCache cache;
  engine.attach_run_cache(&cache);

  RunSpec healthy;
  healthy.ue_count = 4;
  RunSpec degraded = healthy;
  degraded.dead_ranks = {2};

  const RunResult h = engine.run(m, healthy);
  const RunResult d = engine.run(m, degraded);
  EXPECT_EQ(cache.misses(), 2u);  // distinct keys, no false sharing
  EXPECT_NE(h.seconds, d.seconds);
  EXPECT_EQ(engine.run(m, degraded).seconds, d.seconds);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(RunCache, DegradedRunNeverServedFromHealthyEntryEitherOrder) {
  // Regression guard for the cluster's failover path: a request restated to
  // the degraded dead-rank protocol must never be answered from the healthy
  // run's cache entry (nor vice versa), regardless of which was run first.
  const auto m = test_matrix();
  RunSpec healthy;
  healthy.ue_count = 4;
  RunSpec degraded = healthy;
  degraded.dead_ranks = {1, 3};

  const Engine plain;
  const RunResult healthy_truth = plain.run(m, healthy);
  const RunResult degraded_truth = plain.run(m, degraded);
  ASSERT_NE(healthy_truth.seconds, degraded_truth.seconds);

  for (const bool healthy_first : {true, false}) {
    Engine engine;
    RunCache cache;
    engine.attach_run_cache(&cache);
    const RunResult first =
        engine.run(m, healthy_first ? healthy : degraded);
    const RunResult second =
        engine.run(m, healthy_first ? degraded : healthy);
    EXPECT_EQ(cache.misses(), 2u) << "order healthy_first=" << healthy_first;
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ((healthy_first ? first : second).seconds, healthy_truth.seconds);
    EXPECT_EQ((healthy_first ? second : first).seconds, degraded_truth.seconds);
  }
}

TEST(RunCache, ColdAndSteadyStateEnginesShareACacheWithoutCollisions) {
  // The cluster's warm-up transient prices first-touch jobs through a second
  // cold-cache engine that shares the pool's RunCache with the steady-state
  // engine; measure_steady_state is part of the key, so the two populations
  // must coexist with no cross-talk.
  const auto m = test_matrix();
  EngineConfig warm_config;
  EngineConfig cold_config;
  cold_config.measure_steady_state = false;

  RunCache cache;
  Engine warm(warm_config);
  Engine cold(cold_config);
  warm.attach_run_cache(&cache);
  cold.attach_run_cache(&cache);

  RunSpec spec;
  spec.ue_count = 6;
  const RunResult w = warm.run(m, spec);
  const RunResult c = cold.run(m, spec);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  // A cold first traversal is strictly slower than the steady-state window.
  EXPECT_GT(c.seconds, w.seconds);
  // Replays hit their own entries bit-exactly.
  EXPECT_EQ(warm.run(m, spec).seconds, w.seconds);
  EXPECT_EQ(cold.run(m, spec).seconds, c.seconds);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

}  // namespace
}  // namespace scc::sim
