// Quickstart: the smallest end-to-end tour of the library.
//
//   1. build a sparse matrix (or load a Matrix Market file),
//   2. run the paper's CSR SpMV kernel on the host and check it,
//   3. ask the SCC simulator what the same product costs on the 48-core
//      chip under the default and the distance-reduction mapping.
//
// Usage:
//   quickstart [--matrix file.mtx] [--cores N]
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "gen/generators.hpp"
#include "sim/engine.hpp"
#include "sparse/io.hpp"
#include "sparse/properties.hpp"
#include "spmv/kernels.hpp"

int main(int argc, char** argv) {
  using namespace scc;
  const CliArgs args(argc, argv);
  const int cores = static_cast<int>(args.get_int_or("cores", 24));

  // 1. A matrix: a 3D Poisson problem by default, or any .mtx file.
  sparse::CsrMatrix a;
  if (const auto path = args.get("matrix")) {
    a = sparse::read_matrix_market_file(*path);
    std::cout << "loaded " << *path << ": ";
  } else {
    a = gen::stencil_3d(40, 40, 40);
    std::cout << "generated 40x40x40 Poisson stencil: ";
  }
  std::cout << a.rows() << " rows, " << a.nnz() << " nonzeros, working set "
            << Table::num(static_cast<double>(sparse::working_set_bytes(a)) / 1048576.0, 2)
            << " MB\n";

  // 2. The paper's kernel, on this machine, verified against a reference.
  std::vector<real_t> x(static_cast<std::size_t>(a.cols()), 1.0);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows()), 0.0);
  spmv::spmv_csr(a, x, y);
  const auto reference = sparse::dense_reference_spmv(a, x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (std::abs(y[i] - reference[i]) > 1e-9) {
      std::cerr << "kernel mismatch at row " << i << '\n';
      return 1;
    }
  }
  std::cout << "host CSR kernel verified against the dense reference\n";

  // 3. The same product on the simulated SCC.
  const sim::Engine engine;
  Table table("simulated SCC (conf0), y = A*x");
  table.set_header({"mapping", "cores", "time (ms)", "MFLOPS/s", "bound by"});
  for (auto policy : {chip::MappingPolicy::kStandard, chip::MappingPolicy::kDistanceReduction}) {
    const auto r = engine.run(a, cores, policy);
    table.add_row({chip::to_string(policy), Table::integer(cores),
                   Table::num(r.seconds * 1e3, 3), Table::num(r.mflops(), 1),
                   r.bandwidth_bound ? "memory bandwidth" : "slowest core"});
  }
  table.print(std::cout);
  std::cout << "\nTry: quickstart --cores 48, or --matrix your_matrix.mtx\n";
  return 0;
}
