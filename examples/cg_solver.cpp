// Conjugate-gradient solver on the emulated SCC.
//
// The paper motivates SpMV as the workhorse of scientific computing; this
// example shows the workhorse at work: solving the 2D Poisson equation with
// CG, where every iteration is one distributed SpMV plus dot products --
// all running as a real RCCE message-passing program on the emulated
// 48-core chip (each UE owns a row block; scalars travel by allreduce).
//
// Usage:
//   cg_solver [--grid N] [--ues K] [--tol T] [--max-iters M]
#include <cmath>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "gen/generators.hpp"
#include "rcce/rcce.hpp"
#include "sparse/partition.hpp"
#include "spmv/kernels.hpp"

int main(int argc, char** argv) {
  using namespace scc;
  const CliArgs args(argc, argv);
  const auto grid = static_cast<index_t>(args.get_int_or("grid", 64));
  const int ues = static_cast<int>(args.get_int_or("ues", 8));
  const double tol = args.get_double_or("tol", 1e-8);
  const int max_iters = static_cast<int>(args.get_int_or("max-iters", 2000));

  const sparse::CsrMatrix a = gen::stencil_2d(grid, grid);
  const auto n = static_cast<std::size_t>(a.rows());
  std::cout << "2D Poisson " << grid << "x" << grid << " (" << a.rows() << " unknowns, "
            << a.nnz() << " nonzeros), CG on " << ues << " RCCE UEs\n";

  // Right-hand side: a point source in the middle of the domain.
  std::vector<real_t> b(n, 0.0);
  b[n / 2 + static_cast<std::size_t>(grid) / 2] = 1.0;

  const auto blocks = sparse::partition_rows_balanced_nnz(a, ues);
  std::vector<real_t> solution(n, 0.0);
  int iterations = 0;
  double final_residual = 0.0;

  rcce::RuntimeOptions options;
  options.mapping = chip::MappingPolicy::kDistanceReduction;

  rcce::run(ues, [&](rcce::Comm& comm) {
    const auto& my = blocks[static_cast<std::size_t>(comm.rank())];

    // Every UE keeps full copies of the CG vectors and owns the rows of its
    // block; after the local SpMV, block results are exchanged all-to-all
    // (x must be complete for the next product -- the SCC has no coherence
    // to share it implicitly).
    std::vector<real_t> x(n, 0.0), r = b, p = b, ap(n, 0.0);

    auto exchange_blocks = [&](std::vector<real_t>& v) {
      for (int ue = 0; ue < comm.size(); ++ue) {
        const auto& bl = blocks[static_cast<std::size_t>(ue)];
        if (bl.row_count() == 0) continue;
        const auto bytes = static_cast<std::size_t>(bl.row_count()) * sizeof(real_t);
        // Linear all-gather: each UE broadcasts its block in rank order.
        if (ue == comm.rank()) {
          for (int dest = 0; dest < comm.size(); ++dest) {
            if (dest != ue) comm.send(v.data() + bl.row_begin, bytes, dest);
          }
        } else {
          comm.recv(v.data() + bl.row_begin, bytes, ue);
        }
      }
    };

    auto local_dot = [&](const std::vector<real_t>& u, const std::vector<real_t>& v) {
      double acc = 0.0;
      for (index_t i = my.row_begin; i < my.row_end; ++i) {
        acc += u[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
      }
      return comm.allreduce_sum(acc);
    };

    double rr = local_dot(r, r);
    const double rr0 = rr;
    int it = 0;
    for (; it < max_iters && std::sqrt(rr / rr0) > tol; ++it) {
      spmv::spmv_csr_range(a, my.row_begin, my.row_end, p, ap);
      exchange_blocks(ap);
      const double pap = local_dot(p, ap);
      const double alpha = rr / pap;
      for (std::size_t i = 0; i < n; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
      }
      const double rr_new = local_dot(r, r);
      const double beta = rr_new / rr;
      rr = rr_new;
      for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    }
    comm.barrier();
    if (comm.rank() == 0) {
      solution = x;
      iterations = it;
      final_residual = std::sqrt(rr / rr0);
    }
  }, options);

  std::cout << "converged in " << iterations << " iterations, relative residual "
            << final_residual << '\n';

  // Independent verification on the host: ||A*x - b|| must be tiny.
  std::vector<real_t> check(n, 0.0);
  spmv::spmv_csr(a, solution, check);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) err += (check[i] - b[i]) * (check[i] - b[i]);
  err = std::sqrt(err);
  std::cout << "host-side check ||A*x - b||_2 = " << err << '\n';
  return err < 1e-6 ? 0 : 1;
}
