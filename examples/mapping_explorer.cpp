// Mapping explorer: an interactive version of the paper's Section IV-A.
//
// For a chosen matrix (family + size) and UE count, show exactly which
// physical cores each mapping policy picks, how the load spreads over the
// four memory controllers, and what the simulator predicts each choice
// costs. Useful for building intuition about why "distance reduction" wins.
//
// Usage:
//   mapping_explorer [--family banded|random|power-law|circuit|fem]
//                    [--n 40000] [--ues 24] [--conf 0|1|2]
#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "gen/generators.hpp"
#include "sim/engine.hpp"
#include "sparse/properties.hpp"

namespace {

scc::sparse::CsrMatrix build(const std::string& family, scc::index_t n) {
  using namespace scc;
  if (family == "banded") return gen::banded(n, 30, 0.4, 1);
  if (family == "random") return gen::random_uniform(n, 12, 1);
  if (family == "power-law") return gen::power_law(n, 12, 1.2, 1);
  if (family == "circuit") return gen::circuit(n, 2.0, 0.5, 1);
  if (family == "fem") return gen::fem_blocks(n / 16, 16, 3, 1);
  throw std::invalid_argument("unknown family '" + family + "'");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scc;
  const CliArgs args(argc, argv);
  const std::string family = args.get_or("family", "random");
  const auto n = static_cast<index_t>(args.get_int_or("n", 40000));
  const int ues = static_cast<int>(args.get_int_or("ues", 24));
  const int conf = static_cast<int>(args.get_int_or("conf", 0));

  sim::EngineConfig cfg;
  cfg.freq = conf == 1   ? chip::FrequencyConfig::conf1()
             : conf == 2 ? chip::FrequencyConfig::conf2()
                         : chip::FrequencyConfig::conf0();
  const sim::Engine engine(cfg);

  const auto a = build(family, n);
  std::cout << family << " matrix: " << a.rows() << " rows, " << a.nnz()
            << " nonzeros, ws "
            << Table::num(static_cast<double>(sparse::working_set_bytes(a)) / 1048576.0, 2)
            << " MB; " << ues << " UEs at " << cfg.freq.describe() << "\n\n";

  for (auto policy : {chip::MappingPolicy::kStandard, chip::MappingPolicy::kDistanceReduction}) {
    const auto cores = chip::map_ues_to_cores(policy, ues);
    const auto result = engine.run_on_cores(a, cores);

    Table table(chip::to_string(policy) + std::string(" mapping"));
    table.set_header({"rank", "core", "tile(x,y)", "MC", "hops", "compute ms", "stall ms",
                      "total ms"});
    // Show the first few and the slowest ranks to keep the table readable.
    std::size_t slowest = 0;
    for (std::size_t i = 0; i < result.cores.size(); ++i) {
      if (result.cores[i].isolated_seconds > result.cores[slowest].isolated_seconds) {
        slowest = i;
      }
    }
    for (std::size_t i = 0; i < result.cores.size(); ++i) {
      if (i >= 6 && i != slowest) continue;
      const auto& cr = result.cores[i];
      const auto coord = chip::coord_of_core(cr.core);
      std::ostringstream rank_label;
      rank_label << i << (i == slowest ? " (slowest)" : "");
      std::ostringstream coord_label;
      coord_label << '(' << coord.x << ',' << coord.y << ')';
      table.add_row({rank_label.str(), Table::integer(cr.core), coord_label.str(),
                     Table::integer(chip::memory_controller_of_core(cr.core)),
                     Table::integer(cr.hops), Table::num(cr.compute_seconds * 1e3, 3),
                     Table::num(cr.stall_seconds * 1e3, 3),
                     Table::num(cr.isolated_seconds * 1e3, 3)});
    }
    table.print(std::cout);

    std::cout << "  avg hops " << Table::num(chip::average_hops(cores), 2)
              << ", max cores per MC " << chip::max_cores_per_mc(cores) << ", per-MC MB: ";
    for (std::size_t mc = 0; mc < result.mc_bytes.size(); ++mc) {
      std::cout << Table::num(static_cast<double>(result.mc_bytes[mc]) / 1048576.0, 1)
                << (mc + 1 < result.mc_bytes.size() ? " / " : "");
    }
    std::cout << "\n  => " << Table::num(result.seconds * 1e3, 3) << " ms, "
              << Table::num(result.mflops(), 1) << " MFLOPS ("
              << (result.bandwidth_bound ? "bandwidth" : "latency/compute") << " bound)\n\n";
  }
  return 0;
}
