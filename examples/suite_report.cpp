// Suite report: a Table-I-style analysis of any matrix -- one of the
// built-in testbed stand-ins or an arbitrary Matrix Market file -- plus a
// simulated SCC performance profile across core counts and a format
// comparison (CSR / ELL / BCSR / HYB storage footprints).
//
// Usage:
//   suite_report --id 14                # testbed matrix by Table-I index
//   suite_report --matrix path.mtx      # your own matrix
//   suite_report --id 14 --cores 1,8,24,48
#include <iostream>
#include <sstream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/engine.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/ell.hpp"
#include "sparse/hyb.hpp"
#include "sparse/io.hpp"
#include "sparse/properties.hpp"
#include "sparse/reorder.hpp"
#include "testbed/suite.hpp"

namespace {

std::vector<int> parse_core_list(const std::string& spec) {
  std::vector<int> cores;
  std::istringstream iss(spec);
  std::string token;
  while (std::getline(iss, token, ',')) {
    cores.push_back(std::stoi(token));
  }
  return cores;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scc;
  const CliArgs args(argc, argv);

  sparse::CsrMatrix a;
  std::string name;
  if (const auto path = args.get("matrix")) {
    a = sparse::read_matrix_market_file(*path);
    name = *path;
  } else {
    const auto entry = testbed::build_entry(static_cast<int>(args.get_int_or("id", 14)),
                                            testbed::suite_scale_from_env());
    a = std::move(entry.matrix);
    name = entry.name + " (#" + std::to_string(entry.id) + ", " + entry.family + ")";
  }

  // --- structural profile ---
  const auto stats = sparse::row_stats(a);
  Table profile("structural profile: " + name);
  profile.set_header({"property", "value"});
  profile.add_row({"rows x cols", Table::integer(a.rows()) + " x " + Table::integer(a.cols())});
  profile.add_row({"nonzeros", Table::integer(a.nnz())});
  profile.add_row({"nnz/row (mean/min/max)",
                   Table::num(stats.mean_length, 2) + " / " + Table::integer(stats.min_length) +
                       " / " + Table::integer(stats.max_length)});
  profile.add_row({"working set (paper formula)",
                   Table::num(static_cast<double>(sparse::working_set_bytes(a)) / 1048576.0, 2) +
                       " MB"});
  profile.add_row({"bandwidth", Table::integer(sparse::bandwidth(a))});
  profile.add_row({"mean |col-row|", Table::num(sparse::mean_column_distance(a), 1)});
  profile.add_row({"x line-reuse fraction", Table::num(sparse::x_line_reuse_fraction(a), 3)});
  profile.print(std::cout);

  // --- storage formats ---
  std::cout << '\n';
  Table formats("storage formats");
  formats.set_header({"format", "stored values", "overhead vs nnz"});
  formats.add_row({"CSR", Table::integer(a.nnz()), "1.00"});
  try {
    const auto ell = sparse::EllMatrix::from_csr(a, 10.0);
    const auto slots = static_cast<long long>(ell.rows()) * ell.width();
    formats.add_row({"ELL (width " + Table::integer(ell.width()) + ")", Table::integer(slots),
                     Table::num(static_cast<double>(slots) / static_cast<double>(a.nnz()), 2)});
  } catch (const std::invalid_argument&) {
    formats.add_row({"ELL", "(padding > 10x, skipped)", "-"});
  }
  for (index_t b : {2, 4}) {
    try {
      const auto bcsr = sparse::BcsrMatrix::from_csr(a, b, 10.0);
      formats.add_row({"BCSR b=" + Table::integer(b),
                       Table::integer(bcsr.block_count() * b * b),
                       Table::num(bcsr.fill_ratio(), 2)});
    } catch (const std::invalid_argument&) {
      formats.add_row({"BCSR b=" + Table::integer(b), "(fill > 10x, skipped)", "-"});
    }
  }
  const auto hyb = sparse::HybMatrix::from_csr(a);
  formats.add_row({"HYB (ELL " + Table::integer(hyb.ell_width()) + " + COO)",
                   Table::integer(static_cast<long long>(hyb.ell_nnz() + hyb.coo_nnz())),
                   Table::num(1.0 + static_cast<double>(hyb.ell().rows()) *
                                        static_cast<double>(hyb.ell_width()) /
                                        static_cast<double>(a.nnz() ? a.nnz() : 1) -
                                  static_cast<double>(hyb.ell_nnz()) /
                                      static_cast<double>(a.nnz() ? a.nnz() : 1),
                              2)});
  formats.print(std::cout);

  // --- RCM potential ---
  if (a.rows() == a.cols()) {
    const auto perm = sparse::reverse_cuthill_mckee(a);
    const auto reordered = a.permute_symmetric(perm);
    std::cout << "\nRCM reordering: bandwidth " << sparse::bandwidth(a) << " -> "
              << sparse::bandwidth(reordered) << ", x line-reuse "
              << Table::num(sparse::x_line_reuse_fraction(a), 3) << " -> "
              << Table::num(sparse::x_line_reuse_fraction(reordered), 3) << '\n';
  }

  // --- simulated SCC profile ---
  std::cout << '\n';
  const auto cores = parse_core_list(args.get_or("cores", "1,8,24,48"));
  const sim::Engine engine;
  Table perf("simulated SCC performance (conf0, distance-reduction)");
  perf.set_header({"cores", "time (ms)", "MFLOPS", "bound by", "mesh hot link (MB)"});
  for (int c : cores) {
    const auto r = engine.run(a, c, chip::MappingPolicy::kDistanceReduction);
    perf.add_row({Table::integer(c), Table::num(r.seconds * 1e3, 3), Table::num(r.mflops(), 1),
                  r.bandwidth_bound ? "bandwidth" : "latency/compute",
                  Table::num(static_cast<double>(r.mesh.max_link_bytes) / 1048576.0, 2)});
  }
  perf.print(std::cout);
  return 0;
}
