// Power sweep: extends the paper's Section IV-D from its three measured
// configurations to the full frequency space the SCC exposes -- every valid
// (core, mesh, memory) clock combination -- and reports the performance /
// power-efficiency frontier for a chosen workload.
//
// Usage:
//   power_sweep [--id 1..32] [--ues 48] [--top 10]
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "scc/power.hpp"
#include "sim/engine.hpp"
#include "testbed/suite.hpp"

int main(int argc, char** argv) {
  using namespace scc;
  const CliArgs args(argc, argv);
  const int id = static_cast<int>(args.get_int_or("id", 1));
  const int ues = static_cast<int>(args.get_int_or("ues", 48));
  const auto top = static_cast<std::size_t>(args.get_int_or("top", 10));

  const auto entry = testbed::build_entry(id, testbed::suite_scale_from_env());
  std::cout << "matrix #" << id << " (" << entry.name << "), " << ues << " UEs, sweeping all"
            << " SCC frequency configurations\n\n";

  const std::vector<int> core_choices = {100, 200, 266, 320, 400, 533, 800};
  const std::vector<int> mesh_choices = {800, 1600};
  const std::vector<int> memory_choices = {800, 1066};

  struct Point {
    chip::FrequencyConfig freq{533, 800, 800};
    double mflops = 0.0;
    double watts = 0.0;
    double efficiency = 0.0;
  };
  std::vector<Point> points;
  const chip::PowerModel power;
  for (int core : core_choices) {
    for (int mesh : mesh_choices) {
      for (int memory : memory_choices) {
        Point p;
        p.freq = chip::FrequencyConfig(core, mesh, memory);
        sim::EngineConfig cfg;
        cfg.freq = p.freq;
        p.mflops = sim::Engine(cfg)
                       .run(entry.matrix, ues, chip::MappingPolicy::kDistanceReduction)
                       .mflops();
        p.watts = power.chip_watts(p.freq, ues);
        p.efficiency = p.mflops / p.watts;
        points.push_back(p);
      }
    }
  }

  auto show = [&](const std::string& title, auto better) {
    std::vector<Point> sorted = points;
    std::sort(sorted.begin(), sorted.end(), better);
    Table table(title);
    table.set_header({"rank", "configuration", "MFLOPS", "watts", "MFLOPS/W"});
    for (std::size_t i = 0; i < std::min(top, sorted.size()); ++i) {
      table.add_row({Table::integer(static_cast<long long>(i) + 1), sorted[i].freq.describe(),
                     Table::num(sorted[i].mflops, 1), Table::num(sorted[i].watts, 1),
                     Table::num(sorted[i].efficiency, 2)});
    }
    table.print(std::cout);
    std::cout << '\n';
  };

  show("top configurations by performance",
       [](const Point& a, const Point& b) { return a.mflops > b.mflops; });
  show("top configurations by power efficiency",
       [](const Point& a, const Point& b) { return a.efficiency > b.efficiency; });

  // The paper's three measured points for reference.
  Table ref("the paper's measured configurations");
  ref.set_header({"conf", "configuration", "MFLOPS", "watts", "MFLOPS/W"});
  int conf_index = 0;
  for (const auto& freq : {chip::FrequencyConfig::conf0(), chip::FrequencyConfig::conf1(),
                           chip::FrequencyConfig::conf2()}) {
    for (const Point& p : points) {
      if (p.freq == freq) {
        ref.add_row({"conf" + std::to_string(conf_index), p.freq.describe(),
                     Table::num(p.mflops, 1), Table::num(p.watts, 1),
                     Table::num(p.efficiency, 2)});
      }
    }
    ++conf_index;
  }
  ref.print(std::cout);
  return 0;
}
