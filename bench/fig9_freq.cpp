// Figure 9: performance (a) and power efficiency (b) of the three SCC
// clock-frequency configurations. Paper: conf1 (800/1600/1066) reaches
// speedups up to ~1.45 over conf0 (533/800/800); conf2 (800/1600/800) about
// ~1.2; the conf1-conf2 gap (~15%) is purely the memory clock. On power:
// 83.3 W -> ~107 W from conf0 to conf1 at 48 cores, conf1 the best
// MFLOPS/W, conf0 and conf2 practically equal.
#include <iostream>

#include "bench_common.hpp"
#include "scc/power.hpp"

int main() {
  using namespace scc;
  benchutil::Reporter rep("fig9_freq");
  rep.banner("Figure 9", "performance and power efficiency of SCC configurations");
  const auto suite = benchutil::load_suite();

  struct Conf {
    std::string name;
    chip::FrequencyConfig freq;
  };
  const std::vector<Conf> confs = {{"conf0", chip::FrequencyConfig::conf0()},
                                   {"conf1", chip::FrequencyConfig::conf1()},
                                   {"conf2", chip::FrequencyConfig::conf2()}};

  // --- Fig 9(a): performance vs. cores per configuration. ---
  Table perf_table("Fig 9a: suite-average performance (MFLOPS, distance-reduction)");
  perf_table.set_header({"cores", "conf0", "conf1", "conf2", "speedup1", "speedup2"});
  std::vector<std::vector<double>> perf(confs.size());
  for (int cores : benchutil::core_count_sweep()) {
    std::vector<std::string> row = {Table::integer(cores)};
    std::vector<double> at_count;
    for (std::size_t c = 0; c < confs.size(); ++c) {
      sim::EngineConfig cfg;
      cfg.freq = confs[c].freq;
      const double mflops =
          benchutil::suite_mean_gflops(sim::Engine(cfg), suite, cores,
                                       chip::MappingPolicy::kDistanceReduction) *
          1000.0;
      perf[c].push_back(mflops);
      at_count.push_back(mflops);
      row.push_back(Table::num(mflops, 1));
    }
    row.push_back(Table::num(at_count[1] / at_count[0], 3));
    row.push_back(Table::num(at_count[2] / at_count[0], 3));
    perf_table.add_row(std::move(row));
  }
  rep.emit(perf_table, "fig9a_performance");

  double best_speedup1 = 0.0;
  double best_speedup2 = 0.0;
  for (std::size_t i = 0; i < perf[0].size(); ++i) {
    best_speedup1 = std::max(best_speedup1, perf[1][i] / perf[0][i]);
    best_speedup2 = std::max(best_speedup2, perf[2][i] / perf[0][i]);
  }
  const double conf1_vs_conf2_at48 = perf[1].back() / perf[2].back();

  // --- Fig 9(b): full-system power efficiency. ---
  const chip::PowerModel power;
  Table eff_table("Fig 9b: full-system (48-core) power efficiency");
  eff_table.set_header({"conf", "frequencies", "MFLOPS", "watts", "MFLOPS/W"});
  std::vector<double> efficiency;
  std::vector<double> watts_by_conf;
  for (std::size_t c = 0; c < confs.size(); ++c) {
    const double mflops = perf[c].back();  // 48-core entry
    const double watts = power.full_system_watts(confs[c].freq);
    watts_by_conf.push_back(watts);
    efficiency.push_back(mflops / watts);
    eff_table.add_row({confs[c].name, confs[c].freq.describe(), Table::num(mflops, 1),
                       Table::num(watts, 1), Table::num(mflops / watts, 2)});
  }
  rep.emit(eff_table, "fig9b_efficiency");

  const bool ok = rep.check_claims(
      {{"conf1 max speedup (paper: up to ~1.45)", 1.45, best_speedup1, 0.25},
       {"conf2 speedup (paper: ~1.2)", 1.2, best_speedup2, 0.25},
       {"conf1 over conf2 at 48 cores (paper: ~15% memory-clock gain)", 1.15,
        conf1_vs_conf2_at48, 0.12},
       {"conf0 full-system power (paper: 83.3 W)", 83.3, watts_by_conf[0], 0.05},
       {"conf1 full-system power (paper: ~107 W)", 107.4, watts_by_conf[1], 0.08},
       {"conf1 most power-efficient (1=yes)", 1.0,
        (efficiency[1] > efficiency[0] && efficiency[1] > efficiency[2]) ? 1.0 : 0.0, 0.0},
       {"conf0 ~ conf2 efficiency (ratio ~1)", 1.0, efficiency[2] / efficiency[0], 0.12}});
  return rep.finish(ok);
}
