// Cluster failover sweep: availability and tail latency of the multi-chip
// serving layer (src/cluster) under injected faults, with and without the
// recovery machinery.
//
// Self-calibrating like serve_sweep: a fault-free run of the same burst
// workload on the same testbed scale fixes the clean makespan, and the
// reference fault plan -- one whole-chip crash plus two tile kills -- is
// placed at fractions of it, so every chip is guaranteed to hold queued and
// in-flight work when the faults land regardless of SCC_TESTBED_SCALE. The
// claims are ordering statements, checked as booleans with zero tolerance:
//
//   * with failover on, the cluster completes every request through the
//     reference plan (zero dead letters, availability 1.0);
//   * with failover off, the crashed chip's requests are lost;
//   * failover keeps p99 latency within 3x of the fault-free run;
//   * both tile kills complete degraded (cores retired, work not lost).
//
// Env knobs (besides the shared bench ones): SCC_SERVE_REQUESTS overrides
// the per-point request count (CI smoke uses a small value).

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/simulator.hpp"
#include "serve/loadgen.hpp"

namespace {

using namespace scc;

int requests_from_env(int fallback) {
  const char* value = std::getenv("SCC_SERVE_REQUESTS");
  if (value == nullptr || *value == '\0') return fallback;
  return std::max(1, std::atoi(value));
}

/// One instantaneous burst with SLOs no virtual-time run can miss: the
/// availability claims isolate fault loss from deadline shedding.
std::vector<serve::Request> burst_workload(int request_count) {
  serve::WorkloadSpec spec;
  spec.seed = 0x5e12e;
  spec.offered_rps = 1e6;
  spec.request_count = request_count;
  spec.slo_interactive_seconds = 1e6;
  spec.slo_batch_seconds = 1e6;
  return serve::generate_workload(spec);
}

cluster::ClusterConfig base_config(int request_count, bool failover) {
  cluster::ClusterConfig config;
  config.chip_count = 3;
  config.failover = failover;
  // Deep queues: shedding is the serve layer's story, loss is this one's.
  config.chip.admission.max_queue_depth = request_count + 1;
  config.chip.admission.interactive_reserve = 0;
  return config;
}

cluster::ClusterResult run_cluster(serve::MatrixPool& pool,
                                   const cluster::ClusterConfig& config,
                                   const std::vector<serve::Request>& requests) {
  cluster::ClusterSimulator simulator(config, pool);
  return simulator.run(requests);
}

std::string pct(double fraction) { return Table::num(fraction * 100.0, 2); }

}  // namespace

int main() {
  benchutil::Reporter reporter("failover_sweep");
  reporter.banner("robustness extension -- cluster failover sweep",
                  "multi-chip SpMV serving through chip crashes, tile kills and brownouts");

  const int request_count = requests_from_env(120);
  serve::MatrixPool pool(testbed::suite_scale_from_env());
  const auto requests = burst_workload(request_count);

  // --- Calibrate: fault-free run fixes the clean makespan and p99. ---
  const auto clean = run_cluster(pool, base_config(request_count, true), requests);

  // --- Reference plan: one chip crash + two tile kills, mid-backlog. ---
  const double crash_at = clean.makespan_seconds * 0.4;
  const auto plan_config = [&](bool failover) {
    cluster::ClusterConfig config = base_config(request_count, failover);
    config.faults.chip_crashes = {{1, crash_at}};
    config.faults.tile_kills = {{0, 7, clean.makespan_seconds * 0.25},
                                {2, 13, clean.makespan_seconds * 0.5}};
    return config;
  };
  const auto with_failover = run_cluster(pool, plan_config(true), requests);
  const auto without_failover = run_cluster(pool, plan_config(false), requests);

  Table reference("reference fault plan: 1 chip crash + 2 tile kills, burst drain");
  reference.set_header({"mode", "completed", "dead-lettered", "availability [%]",
                        "retries", "failovers", "p99 [ms]", "makespan [s]"});
  const auto add_mode = [&](const std::string& mode, const cluster::ClusterResult& r) {
    reference.add_row({mode, Table::integer(r.completed), Table::integer(r.dead_lettered),
                       pct(r.availability), Table::integer(r.retries),
                       Table::integer(r.failovers), Table::num(r.latency_total.p99 * 1e3, 2),
                       Table::num(r.makespan_seconds, 4)});
  };
  add_mode("fault-free", clean);
  add_mode("failover on", with_failover);
  add_mode("failover off", without_failover);
  reporter.emit(reference, "failover_reference");

  // --- Sweep stochastic crash rates, failover on vs off. ---
  Table sweep("availability vs stochastic crash rate (horizon = clean makespan)");
  sweep.set_header({"crash rate", "mode", "crashes", "completed", "dead-lettered",
                    "availability [%]", "p99 [ms]"});
  for (const double rate : {0.0, 0.2, 0.5}) {
    for (const bool failover : {true, false}) {
      cluster::ClusterConfig config = base_config(request_count, failover);
      config.faults.seed = 0xfa117;
      config.faults.crash_rate = rate;
      config.faults.crash_horizon_seconds = clean.makespan_seconds;
      const auto result = run_cluster(pool, config, requests);
      sweep.add_row({Table::num(rate, 1), failover ? "on" : "off",
                     Table::integer(result.chip_crashes), Table::integer(result.completed),
                     Table::integer(result.dead_lettered), pct(result.availability),
                     Table::num(result.latency_total.p99 * 1e3, 2)});
    }
  }
  reporter.emit(sweep, "failover_crash_sweep");

  int retired = 0;
  for (const auto& chip : with_failover.chips) retired += chip.retired_cores;

  const bool ok = reporter.check_claims({
      {"failover completes every request through crash + tile kills (bool)", 1.0,
       with_failover.completed == request_count && with_failover.dead_lettered == 0 ? 1.0
                                                                                   : 0.0,
       0.0},
      {"failover off loses the crashed chip's requests (bool)", 1.0,
       without_failover.dead_lettered > 0 ? 1.0 : 0.0, 0.0},
      {"failover p99 stays within 3x of fault-free (bool)", 1.0,
       with_failover.latency_total.p99 <= 3.0 * clean.latency_total.p99 ? 1.0 : 0.0, 0.0},
      {"both tile kills complete degraded with cores retired (bool)", 1.0,
       with_failover.tile_kills == 2 && retired == 2 ? 1.0 : 0.0, 0.0},
  });
  return reporter.finish(ok);
}
