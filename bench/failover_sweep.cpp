// Cluster failover sweep: availability and tail latency of the multi-chip
// serving layer (src/cluster) under injected faults, with and without the
// recovery machinery.
//
// Self-calibrating like serve_sweep: a fault-free run of the same burst
// workload on the same testbed scale fixes the clean makespan, and the
// reference fault plan -- one whole-chip crash plus two tile kills -- is
// placed at fractions of it, so every chip is guaranteed to hold queued and
// in-flight work when the faults land regardless of SCC_TESTBED_SCALE. The
// claims are ordering statements, checked as booleans with zero tolerance:
//
//   * with failover on, the cluster completes every request through the
//     reference plan (zero dead letters, availability 1.0);
//   * with failover off, the crashed chip's requests are lost;
//   * failover keeps p99 latency within 3x of the fault-free run;
//   * both tile kills complete degraded (cores retired, work not lost).
//
// The recovery section exercises the re-admission and data-movement
// machinery the same self-calibrating way:
//
//   * a crashed chip restarts, passes probation, and takes traffic again,
//     and the post-rejoin p95 (past the cold warm-up) converges to within
//     3x of the pre-crash p95;
//   * with re-ship priced (single-replica placement, slow inter-chip link),
//     the failover run's p99 exceeds the free-data-movement run's p99, and
//     bytes actually moved;
//   * a correlated power-domain outage killing most of the fleet at once is
//     survived with conservation intact and zero loss;
//   * the same seed replays the fault/failover/rejoin log byte for byte
//     across SCC_SIM_THREADS settings and run-cache on/off.
//
// Env knobs (besides the shared bench ones): SCC_SERVE_REQUESTS overrides
// the per-point request count (CI smoke uses a small value).

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/simulator.hpp"
#include "serve/loadgen.hpp"

namespace {

using namespace scc;

int requests_from_env(int fallback) {
  const char* value = std::getenv("SCC_SERVE_REQUESTS");
  if (value == nullptr || *value == '\0') return fallback;
  return std::max(1, std::atoi(value));
}

/// One instantaneous burst with SLOs no virtual-time run can miss: the
/// availability claims isolate fault loss from deadline shedding.
std::vector<serve::Request> burst_workload(int request_count) {
  serve::WorkloadSpec spec;
  spec.seed = 0x5e12e;
  spec.offered_rps = 1e6;
  spec.request_count = request_count;
  spec.slo_interactive_seconds = 1e6;
  spec.slo_batch_seconds = 1e6;
  return serve::generate_workload(spec);
}

cluster::ClusterConfig base_config(int request_count, bool failover) {
  cluster::ClusterConfig config;
  config.chip_count = 3;
  config.failover = failover;
  // Deep queues: shedding is the serve layer's story, loss is this one's.
  config.chip.admission.max_queue_depth = request_count + 1;
  config.chip.admission.interactive_reserve = 0;
  return config;
}

cluster::ClusterResult run_cluster(serve::MatrixPool& pool,
                                   const cluster::ClusterConfig& config,
                                   const std::vector<serve::Request>& requests) {
  cluster::ClusterSimulator simulator(config, pool);
  return simulator.run(requests);
}

std::string pct(double fraction) { return Table::num(fraction * 100.0, 2); }

/// Nearest-rank percentile of an unsorted sample; 0 when empty.
double percentile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sample.size() - 1));
  return sample[idx];
}

/// First log time of `kind`, or -1 when the event never fired.
double first_time(const cluster::ClusterResult& result, const std::string& kind) {
  for (const auto& event : result.log) {
    if (event.kind == kind) return event.seconds;
  }
  return -1.0;
}

}  // namespace

int main() {
  benchutil::Reporter reporter("failover_sweep");
  reporter.banner("robustness extension -- cluster failover sweep",
                  "multi-chip SpMV serving through chip crashes, tile kills and brownouts");

  const int request_count = requests_from_env(120);
  serve::MatrixPool pool(testbed::suite_scale_from_env());
  const auto requests = burst_workload(request_count);

  // --- Calibrate: fault-free run fixes the clean makespan and p99. ---
  const auto clean = run_cluster(pool, base_config(request_count, true), requests);

  // --- Reference plan: one chip crash + two tile kills, mid-backlog. ---
  const double crash_at = clean.makespan_seconds * 0.4;
  const auto plan_config = [&](bool failover) {
    cluster::ClusterConfig config = base_config(request_count, failover);
    config.faults.chip_crashes = {{1, crash_at}};
    config.faults.tile_kills = {{0, 7, clean.makespan_seconds * 0.25},
                                {2, 13, clean.makespan_seconds * 0.5}};
    return config;
  };
  const auto with_failover = run_cluster(pool, plan_config(true), requests);
  const auto without_failover = run_cluster(pool, plan_config(false), requests);

  Table reference("reference fault plan: 1 chip crash + 2 tile kills, burst drain");
  reference.set_header({"mode", "completed", "dead-lettered", "availability [%]",
                        "retries", "failovers", "p99 [ms]", "makespan [s]"});
  const auto add_mode = [&](const std::string& mode, const cluster::ClusterResult& r) {
    reference.add_row({mode, Table::integer(r.completed), Table::integer(r.dead_lettered),
                       pct(r.availability), Table::integer(r.retries),
                       Table::integer(r.failovers), Table::num(r.latency_total.p99 * 1e3, 2),
                       Table::num(r.makespan_seconds, 4)});
  };
  add_mode("fault-free", clean);
  add_mode("failover on", with_failover);
  add_mode("failover off", without_failover);
  reporter.emit(reference, "failover_reference");

  // --- Sweep stochastic crash rates, failover on vs off. ---
  Table sweep("availability vs stochastic crash rate (horizon = clean makespan)");
  sweep.set_header({"crash rate", "mode", "crashes", "completed", "dead-lettered",
                    "availability [%]", "p99 [ms]"});
  for (const double rate : {0.0, 0.2, 0.5}) {
    for (const bool failover : {true, false}) {
      cluster::ClusterConfig config = base_config(request_count, failover);
      config.faults.seed = 0xfa117;
      config.faults.crash_rate = rate;
      config.faults.crash_horizon_seconds = clean.makespan_seconds;
      const auto result = run_cluster(pool, config, requests);
      sweep.add_row({Table::num(rate, 1), failover ? "on" : "off",
                     Table::integer(result.chip_crashes), Table::integer(result.completed),
                     Table::integer(result.dead_lettered), pct(result.availability),
                     Table::num(result.latency_total.p99 * 1e3, 2)});
    }
  }
  reporter.emit(sweep, "failover_crash_sweep");

  // --- Recovery: re-admission with warm-up, priced re-ship, domains. ---

  // Paced stream over 1.5x the clean burst makespan: arrivals are still
  // flowing when the crashed chip rejoins, so re-admission is observable as
  // served traffic, not just a log line.
  const double span = clean.makespan_seconds * 1.5;
  serve::WorkloadSpec paced_spec;
  paced_spec.seed = 0x5e12e;
  paced_spec.offered_rps = static_cast<double>(request_count) / span;
  paced_spec.request_count = request_count;
  paced_spec.slo_interactive_seconds = 1e6;
  paced_spec.slo_batch_seconds = 1e6;
  const auto paced = serve::generate_workload(paced_spec);

  cluster::ClusterConfig rejoin_config = base_config(request_count, true);
  rejoin_config.detector.heartbeat_seconds = clean.makespan_seconds / 50.0;
  rejoin_config.faults.chip_crashes = {{1, span * 0.3}};
  rejoin_config.faults.restart_downtime_seconds = span * 0.2;
  rejoin_config.faults.restart_jitter_fraction = 0.25;
  const auto rejoin = run_cluster(pool, rejoin_config, paced);

  const double restart_at = first_time(rejoin, "chip_restart");
  const double rejoined_at = first_time(rejoin, "chip_rejoined");
  int served_after_rejoin = 0;
  std::vector<double> pre_crash_latency, post_rejoin_latency;
  for (const auto& record : rejoin.records) {
    if (record.outcome != cluster::Outcome::kCompleted) continue;
    if (record.dispatch_seconds < span * 0.3) {
      pre_crash_latency.push_back(record.latency_seconds());
    }
    if (rejoined_at >= 0.0 && record.dispatch_seconds >= rejoined_at) {
      // Past the rejoin; skip the chip's cold warm-up jobs themselves when
      // judging convergence -- they are the priced transient.
      if (record.chip == 1) ++served_after_rejoin;
      if (!record.cold) post_rejoin_latency.push_back(record.latency_seconds());
    }
  }
  const double pre_p95 = percentile(pre_crash_latency, 0.95);
  const double post_p95 = percentile(post_rejoin_latency, 0.95);

  // Same reference crash, warm vs cold destinations: free data movement
  // (every matrix on every chip) against single-replica placement over a
  // slow inter-chip link.
  cluster::ClusterConfig warm_config = plan_config(true);
  warm_config.placement.replicas = 0;
  const auto warm_dest = run_cluster(pool, warm_config, requests);
  cluster::ClusterConfig cold_config = plan_config(true);
  cold_config.placement.replicas = 1;
  cold_config.placement.reship_bandwidth_fraction = 0.25;
  const auto cold_dest = run_cluster(pool, cold_config, requests);

  // Correlated power-domain outage: both chips of domain 0 die mid-backlog
  // (2/3 of the fleet), restart, and rejoin.
  cluster::ClusterConfig domain_config = base_config(request_count, true);
  domain_config.detector.heartbeat_seconds = clean.makespan_seconds / 50.0;
  domain_config.faults.chips_per_domain = 2;
  domain_config.faults.domain_outages = {{0, clean.makespan_seconds * 0.35}};
  domain_config.faults.restart_downtime_seconds = clean.makespan_seconds * 0.25;
  const auto domain = run_cluster(pool, domain_config, requests);

  // Same-seed replay of the rejoin scenario across host-parallelism and
  // run-cache settings: the fault/failover/rejoin log must not move a byte.
  const auto replay_log = [&](int threads, bool run_cache) {
    setenv("SCC_SIM_THREADS", std::to_string(threads).c_str(), 1);
    serve::MatrixPool replay_pool =
        run_cache ? serve::MatrixPool(testbed::suite_scale_from_env())
                  : serve::MatrixPool::without_run_cache(testbed::suite_scale_from_env());
    const auto result = run_cluster(replay_pool, rejoin_config, paced);
    unsetenv("SCC_SIM_THREADS");
    std::string text;
    for (const auto& event : result.log) {
      text += cluster::describe(event);
      text += '\n';
    }
    return text;
  };
  const std::string log_base = replay_log(1, true);
  const bool replay_identical = !log_base.empty() &&
                                log_base == replay_log(1, false) &&
                                log_base == replay_log(4, true) &&
                                log_base == replay_log(4, false);

  Table recovery("recovery: re-admission, priced re-ship, correlated domains");
  recovery.set_header({"scenario", "completed", "restarts", "rejoins", "reships",
                       "reship [MB]", "cold runs", "p95/p99 [ms]"});
  recovery.add_row({"rejoin (paced)", Table::integer(rejoin.completed),
                    Table::integer(rejoin.restarts), Table::integer(rejoin.rejoins),
                    Table::integer(rejoin.reships),
                    Table::num(rejoin.reship_bytes / 1e6, 2),
                    Table::integer(rejoin.cold_runs),
                    Table::num(pre_p95 * 1e3, 2) + " -> " + Table::num(post_p95 * 1e3, 2)});
  recovery.add_row({"crash, warm dest", Table::integer(warm_dest.completed),
                    Table::integer(warm_dest.restarts), Table::integer(warm_dest.rejoins),
                    Table::integer(warm_dest.reships),
                    Table::num(warm_dest.reship_bytes / 1e6, 2),
                    Table::integer(warm_dest.cold_runs),
                    Table::num(warm_dest.latency_total.p99 * 1e3, 2)});
  recovery.add_row({"crash, cold dest", Table::integer(cold_dest.completed),
                    Table::integer(cold_dest.restarts), Table::integer(cold_dest.rejoins),
                    Table::integer(cold_dest.reships),
                    Table::num(cold_dest.reship_bytes / 1e6, 2),
                    Table::integer(cold_dest.cold_runs),
                    Table::num(cold_dest.latency_total.p99 * 1e3, 2)});
  recovery.add_row({"domain outage", Table::integer(domain.completed),
                    Table::integer(domain.restarts), Table::integer(domain.rejoins),
                    Table::integer(domain.reships),
                    Table::num(domain.reship_bytes / 1e6, 2),
                    Table::integer(domain.cold_runs),
                    Table::num(domain.latency_total.p99 * 1e3, 2)});
  reporter.emit(recovery, "failover_recovery");

  int retired = 0;
  for (const auto& chip : with_failover.chips) retired += chip.retired_cores;

  const bool ok = reporter.check_claims({
      {"failover completes every request through crash + tile kills (bool)", 1.0,
       with_failover.completed == request_count && with_failover.dead_lettered == 0 ? 1.0
                                                                                   : 0.0,
       0.0},
      {"failover off loses the crashed chip's requests (bool)", 1.0,
       without_failover.dead_lettered > 0 ? 1.0 : 0.0, 0.0},
      {"failover p99 stays within 3x of fault-free (bool)", 1.0,
       with_failover.latency_total.p99 <= 3.0 * clean.latency_total.p99 ? 1.0 : 0.0, 0.0},
      {"both tile kills complete degraded with cores retired (bool)", 1.0,
       with_failover.tile_kills == 2 && retired == 2 ? 1.0 : 0.0, 0.0},
      {"crashed chip restarts, rejoins, and serves again (bool)", 1.0,
       rejoin.restarts == 1 && rejoin.rejoins >= 1 && restart_at > 0.0 &&
               rejoined_at > restart_at && served_after_rejoin > 0
           ? 1.0
           : 0.0,
       0.0},
      {"post-rejoin p95 converges within 3x of pre-crash p95 (bool)", 1.0,
       !pre_crash_latency.empty() && !post_rejoin_latency.empty() &&
               post_p95 <= 3.0 * pre_p95
           ? 1.0
           : 0.0,
       0.0},
      {"priced re-ship moves bytes and lifts cold-destination p99 (bool)", 1.0,
       cold_dest.reship_bytes > 0.0 && warm_dest.reship_bytes == 0.0 &&
               cold_dest.latency_total.p99 > warm_dest.latency_total.p99
           ? 1.0
           : 0.0,
       0.0},
      {"domain outage survived: conservation intact, zero loss (bool)", 1.0,
       domain.domain_outages == 1 && domain.chip_crashes == 2 &&
               domain.dead_lettered == 0 &&
               domain.completed + domain.rejected == request_count
           ? 1.0
           : 0.0,
       0.0},
      {"same-seed logs byte-identical across threads and run-cache (bool)", 1.0,
       replay_identical ? 1.0 : 0.0, 0.0},
  });
  return reporter.finish(ok);
}
