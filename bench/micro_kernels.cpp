// google-benchmark microbenches of the host kernels (not a paper figure):
// wall-clock throughput of the CSR/COO/ELL/no-x-miss/OpenMP kernels on
// generated matrices of the testbed's structural families. Useful for
// regression-tracking the library itself, independent of the SCC simulator.
#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "gen/generators.hpp"
#include "spmv/kernels.hpp"

namespace {

using namespace scc;

sparse::CsrMatrix matrix_for(int family, index_t n) {
  switch (family) {
    case 0: return gen::banded(n, 20, 0.5, 1);
    case 1: return gen::random_uniform(n, 10, 1);
    case 2: return gen::power_law(n, 10, 1.1, 1);
    default: return gen::circuit(n, 2.0, 0.4, 1);
  }
}

const char* family_name(int family) {
  switch (family) {
    case 0: return "banded";
    case 1: return "random";
    case 2: return "power-law";
    default: return "circuit";
  }
}

void run_with_flops(benchmark::State& state, const sparse::CsrMatrix& m,
                    const std::function<void(std::span<const real_t>, std::span<real_t>)>& f) {
  std::vector<real_t> x(static_cast<std::size_t>(m.cols()), 1.0);
  std::vector<real_t> y(static_cast<std::size_t>(m.rows()), 0.0);
  for (auto _ : state) {
    f(x, y);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(m.nnz()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_SpmvCsr(benchmark::State& state) {
  const auto m = matrix_for(static_cast<int>(state.range(0)),
                            static_cast<index_t>(state.range(1)));
  state.SetLabel(family_name(static_cast<int>(state.range(0))));
  run_with_flops(state, m, [&](auto x, auto y) { spmv::spmv_csr(m, x, y); });
}
BENCHMARK(BM_SpmvCsr)
    ->ArgsProduct({{0, 1, 2, 3}, {10000, 100000}})
    ->Unit(benchmark::kMicrosecond);

void BM_SpmvCsrNoXMiss(benchmark::State& state) {
  const auto m = matrix_for(1, static_cast<index_t>(state.range(0)));
  run_with_flops(state, m, [&](auto x, auto y) { spmv::spmv_csr_no_x_miss(m, x, y); });
}
BENCHMARK(BM_SpmvCsrNoXMiss)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_SpmvCoo(benchmark::State& state) {
  const auto m = matrix_for(0, static_cast<index_t>(state.range(0)));
  const auto coo = m.to_coo();
  run_with_flops(state, m, [&](auto x, auto y) { spmv::spmv_coo(coo, x, y); });
}
BENCHMARK(BM_SpmvCoo)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_SpmvEll(benchmark::State& state) {
  const auto m = matrix_for(0, static_cast<index_t>(state.range(0)));
  const auto ell = sparse::EllMatrix::from_csr(m, 50.0);
  run_with_flops(state, m, [&](auto x, auto y) { spmv::spmv_ell(ell, x, y); });
}
BENCHMARK(BM_SpmvEll)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_SpmvBcsr(benchmark::State& state) {
  // FEM-like matrix with natural 4x4 block structure.
  const auto m = gen::fem_blocks(static_cast<index_t>(state.range(0)) / 4, 4, 2, 1);
  const auto bcsr = sparse::BcsrMatrix::from_csr(m, static_cast<index_t>(state.range(1)), 64.0);
  state.SetLabel("fill=" + std::to_string(bcsr.fill_ratio()));
  run_with_flops(state, m, [&](auto x, auto y) { spmv::spmv_bcsr(bcsr, x, y); });
}
BENCHMARK(BM_SpmvBcsr)->ArgsProduct({{20000}, {1, 2, 4}})->Unit(benchmark::kMicrosecond);

void BM_SpmvHyb(benchmark::State& state) {
  const auto m = matrix_for(2, static_cast<index_t>(state.range(0)));
  const auto hyb = sparse::HybMatrix::from_csr(m);
  run_with_flops(state, m, [&](auto x, auto y) { spmv::spmv_hyb(hyb, x, y); });
}
BENCHMARK(BM_SpmvHyb)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_SpmvParallel(benchmark::State& state) {
  const auto m = matrix_for(2, 100000);
  const int threads = static_cast<int>(state.range(0));
  run_with_flops(state, m, [&](auto x, auto y) { spmv::spmv_csr_parallel(m, x, y, threads); });
}
BENCHMARK(BM_SpmvParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

}  // namespace

// Expanded BENCHMARK_MAIN() plus the BENCH_<name>.json artifact every bench
// binary leaves behind for the CI smoke job. The google-benchmark output has
// no paper tables or claims, so the artifact carries only the envelope.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  scc::benchutil::Reporter rep("micro_kernels");
  return rep.finish(true);
}
