// Ablation bench (not a paper figure): quantifies how much each modelling
// ingredient contributes to the simulated behaviour, and how much of the
// "no-x-miss" headroom a real optimization (RCM reordering) recovers.
//
//  A. contention model on/off -- how much of the mapping gap is bandwidth
//     contention vs. pure Equation-1 latency.
//  B. nnz-balanced vs. equal-rows partitioning -- the paper's partitioning
//     choice, measured.
//  C. RCM reordering vs. original ordering on the most irregular matrices --
//     connects Section IV-C's diagnosis to the classic cure.
#include <iostream>

#include "bench_common.hpp"
#include "scc/power.hpp"
#include "sim/app_model.hpp"
#include "sim/comm_model.hpp"
#include "sparse/reorder.hpp"

int main() {
  using namespace scc;
  benchutil::Reporter rep("ablation_model");
  rep.banner("Ablation", "model ingredients and the RCM locality cure");
  const auto suite = benchutil::load_suite();

  // --- A: contention on/off at 24 cores, standard mapping. ---
  {
    sim::EngineConfig on;
    sim::EngineConfig off;
    off.memory.model_contention = false;
    Table t("A: per-MC bandwidth contention (24 cores, standard mapping)");
    t.set_header({"model", "suite MFLOPS", "mapping speedup (dr/std)"});
    for (const auto* cfg : {&on, &off}) {
      const sim::Engine engine(*cfg);
      const double std_perf = benchutil::suite_mean_gflops(
                                  engine, suite, 24, chip::MappingPolicy::kStandard) *
                              1000.0;
      const double dr_perf = benchutil::suite_mean_gflops(
                                 engine, suite, 24, chip::MappingPolicy::kDistanceReduction) *
                             1000.0;
      t.add_row({cfg->memory.model_contention ? "contention on" : "contention off",
                 Table::num(std_perf, 1), Table::num(dr_perf / std_perf, 3)});
    }
    rep.emit(t, "ablation_contention");
    std::cout << '\n';
  }

  // --- B: partitioning scheme. The engine always balances nnz (the paper's
  // scheme); emulate equal-rows by timing the worst block through the
  // imbalance ratio on the skewed matrices. ---
  {
    Table t("B: nnz-balanced vs equal-rows partitioning (24 parts, imbalance = max/ideal)");
    t.set_header({"#", "matrix", "balanced imbalance", "equal-rows imbalance"});
    for (int id : {5, 10, 23, 24}) {  // skewed row-length matrices
      const auto& e = suite[static_cast<std::size_t>(id - 1)];
      const auto balanced = sparse::partition_rows_balanced_nnz(e.matrix, 24);
      const auto equal = sparse::partition_rows_equal_rows(e.matrix, 24);
      t.add_row({Table::integer(id), e.name,
                 Table::num(sparse::partition_imbalance(balanced), 3),
                 Table::num(sparse::partition_imbalance(equal), 3)});
    }
    rep.emit(t, "ablation_partitioning");
    std::cout << '\n';
  }

  // --- C: RCM on the most irregular suite members. ---
  {
    const sim::Engine engine;
    Table t("C: RCM reordering vs no-x-miss headroom (8 cores, MFLOPS)");
    t.set_header({"#", "matrix", "original", "RCM-reordered", "no-x-miss bound",
                  "headroom recovered %"});
    for (int id : {14, 17, 24, 25}) {  // random + circuit stand-ins
      const auto& e = suite[static_cast<std::size_t>(id - 1)];
      const double base =
          engine.run(e.matrix, 8, chip::MappingPolicy::kDistanceReduction).mflops();
      const auto perm = sparse::reverse_cuthill_mckee(e.matrix);
      const auto reordered = e.matrix.permute_symmetric(perm);
      const double rcm =
          engine.run(reordered, 8, chip::MappingPolicy::kDistanceReduction).mflops();
      const double bound = engine.run(e.matrix, 8, chip::MappingPolicy::kDistanceReduction,
                                      sim::SpmvVariant::kCsrNoXMiss)
                               .mflops();
      const double recovered =
          bound > base ? (rcm - base) / (bound - base) * 100.0 : 100.0;
      t.add_row({Table::integer(id), e.name, Table::num(base, 1), Table::num(rcm, 1),
                 Table::num(bound, 1), Table::num(recovered, 0)});
    }
    rep.emit(t, "ablation_rcm");
  }

  // --- D: RCCE barrier -- first-principles cost vs the engine's calibrated
  // charge. The derived value covers the raw flag traffic; the calibrated
  // one also absorbs fences and OS noise, so it is expected to sit higher. ---
  {
    Table t("D: barrier cost per product (conf0): derived primitives vs calibration");
    t.set_header({"UEs", "derived (us)", "engine-calibrated (us)", "ratio"});
    const sim::EngineConfig cfg;
    for (int ues : {8, 16, 24, 48}) {
      const auto cores =
          chip::map_ues_to_cores(chip::MappingPolicy::kDistanceReduction, ues);
      const double derived = sim::barrier_ns(cfg.freq, cores) * 1e-3;
      const double calibrated = cfg.kernel.barrier_ns_per_ue * ues * 1e-3;
      t.add_row({Table::integer(ues), Table::num(derived, 1), Table::num(calibrated, 1),
                 Table::num(calibrated / derived, 2)});
    }
    rep.emit(t, "ablation_barrier");
    std::cout << '\n';
  }

  // --- E: power-model scaling law. The paper's measured 83.3 -> ~107 W jump
  // matches frequency-only scaling; a full DVFS ladder (f*V^2) would price
  // conf1 out of its efficiency win. ---
  {
    Table t("E: chip power under frequency-only vs DVFS (f*V^2) scaling, 48 cores");
    t.set_header({"conf", "freq-only W", "DVFS W", "eff ratio vs conf0 (freq-only)",
                  "eff ratio vs conf0 (DVFS)"});
    chip::PowerModelConfig dvfs_cfg;
    dvfs_cfg.model_voltage_scaling = true;
    const chip::PowerModel linear;
    const chip::PowerModel dvfs(dvfs_cfg);
    const double speedups[3] = {1.0, 1.48, 1.40};  // measured by fig9_freq
    const chip::FrequencyConfig confs[3] = {chip::FrequencyConfig::conf0(),
                                            chip::FrequencyConfig::conf1(),
                                            chip::FrequencyConfig::conf2()};
    const double p0_lin = linear.full_system_watts(confs[0]);
    const double p0_dvfs = dvfs.full_system_watts(confs[0]);
    for (int c = 0; c < 3; ++c) {
      const double pl = linear.full_system_watts(confs[c]);
      const double pd = dvfs.full_system_watts(confs[c]);
      t.add_row({"conf" + std::to_string(c), Table::num(pl, 1), Table::num(pd, 1),
                 Table::num(speedups[c] / (pl / p0_lin), 3),
                 Table::num(speedups[c] / (pd / p0_dvfs), 3)});
    }
    rep.emit(t, "ablation_power");
    std::cout << '\n';
  }

  // --- F: the contention-aware mapping extension at UE counts where
  // distance reduction leaves the MC load unbalanced. ---
  {
    const sim::Engine engine;
    Table t("F: mapping policies at non-multiple-of-4 UE counts (suite MFLOPS)");
    t.set_header({"UEs", "standard", "distance-reduction", "contention-aware"});
    for (int ues : {6, 10, 18}) {
      std::vector<std::string> row = {Table::integer(ues)};
      for (auto policy :
           {chip::MappingPolicy::kStandard, chip::MappingPolicy::kDistanceReduction,
            chip::MappingPolicy::kContentionAware}) {
        row.push_back(Table::num(
            benchutil::suite_mean_gflops(engine, suite, ues, policy) * 1000.0, 1));
      }
      t.add_row(std::move(row));
    }
    rep.emit(t, "ablation_mapping_ext");
  }

  // --- G: whole-application view -- distributing the matrix through the
  // MPB is expensive; how many products amortize it? (Why the paper's
  // repeated-product timing methodology is the right one for iterative
  // solvers.) ---
  {
    const sim::Engine engine;
    Table t("G: distributed-SpMV setup amortization (48 UEs, distance-reduction)");
    t.set_header({"#", "matrix", "setup (ms)", "product (ms)",
                  "products to amortize (5%)"});
    for (int id : {2, 14, 24, 32}) {
      const auto& e = suite[static_cast<std::size_t>(id - 1)];
      const auto costs = sim::estimate_distributed_spmv(
          engine, e.matrix, 48, chip::MappingPolicy::kDistanceReduction);
      t.add_row({Table::integer(id), e.name, Table::num(costs.setup_seconds() * 1e3, 1),
                 Table::num(costs.product_seconds * 1e3, 3),
                 Table::num(costs.amortization_products(0.05), 0)});
    }
    rep.emit(t, "ablation_amortization");
  }

  std::cout << "\nAblation bench completed (informational; no pass/fail claims).\n";
  return rep.finish(true);
}
