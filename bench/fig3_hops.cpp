// Figure 3: single-core SpMV performance as a function of the core's mesh
// distance (0-3 hops) to its memory controller. The paper reports a steady
// degradation reaching ~12% at 3 hops.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace scc;
  benchutil::Reporter rep("fig3_hops");
  rep.banner("Figure 3", "single-core performance vs. hops to the memory controller");
  const auto suite = benchutil::load_suite();
  const sim::Engine engine;  // conf0 defaults

  Table table("suite-average single-core performance by hop distance (conf0)");
  table.set_header({"hops", "MFLOPS/s", "relative to 0 hops", "Eq.1 latency (ns)"});

  std::vector<double> perf;
  for (int hops = 0; hops <= 3; ++hops) {
    perf.push_back(benchutil::suite_mean_gflops_at_hops(engine, suite, hops) * 1000.0);
  }
  for (int hops = 0; hops <= 3; ++hops) {
    const auto h = static_cast<std::size_t>(hops);
    table.add_row({Table::integer(hops), Table::num(perf[h], 1),
                   Table::num(perf[h] / perf[0], 3),
                   Table::num(chip::memory_latency_ns(engine.config().freq, 0, hops), 1)});
  }
  rep.emit(table, "fig3_hops");

  const double degradation_3hop = 1.0 - perf[3] / perf[0];
  std::cout << "\n3-hop degradation: " << Table::num(degradation_3hop * 100.0, 1) << "%\n";

  const bool ok = rep.check_claims(
      {{"3-hop degradation (paper: ~12%)", 0.12, degradation_3hop, 0.5},
       {"performance monotonically decreasing (1=yes)", 1.0,
        (perf[0] > perf[1] && perf[1] > perf[2] && perf[2] > perf[3]) ? 1.0 : 0.0, 0.0}});
  return rep.finish(ok);
}
