// End-to-end result-integrity sweep: the ABFT checksum verification layer
// (src/integrity) from clean-run overhead through detection coverage to the
// cluster's SDC quarantine policy.
//
// Self-calibrating like the other robustness benches: nothing here assumes
// a wall-clock or a testbed size. The claims are ordering/coverage
// statements checked as booleans with zero tolerance:
//
//   * clean runs never fail verification -- zero false positives across
//     every matrix family and core count tried, in detect and correct mode;
//   * verify-on pricing is bounded: the p95 whole-run slowdown of the
//     checksum dot-products stays under 1.5x (they stream 8(rows + 2 cols)
//     bytes against the product's O(nnz) traffic);
//   * detection coverage: over injected bit flips whose corruption actually
//     perturbs the product beyond tolerance ("significant"), detect mode
//     catches at least 99%;
//   * correct mode recomputes: with a non-sticky fault every detected
//     corruption is corrected in exactly two attempts;
//   * the quarantine isolates a bad-DRAM chip -- it is withdrawn after the
//     threshold, takes no work afterwards, and verify-on delivers zero
//     escapes cluster-wide, while the verify-off baseline leaks wrong
//     products silently;
//   * the corrupted cluster's fault/recovery log replays byte for byte
//     across SCC_SIM_THREADS settings and run-cache on/off.
//
// Env knobs (besides the shared bench ones): SCC_SDC_SITES overrides the
// per-matrix injection count, SCC_SERVE_REQUESTS the cluster request count
// (CI smoke uses small values).

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/simulator.hpp"
#include "gen/generators.hpp"
#include "integrity/integrity.hpp"
#include "serve/loadgen.hpp"

namespace {

using namespace scc;

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::max(1, std::atoi(value));
}

/// Nearest-rank percentile of an unsorted sample; 0 when empty.
double percentile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sample.size() - 1));
  return sample[idx];
}

struct NamedMatrix {
  std::string name;
  sparse::CsrMatrix matrix;
};

std::vector<NamedMatrix> matrix_families() {
  std::vector<NamedMatrix> families;
  families.push_back({"banded", gen::banded(3000, 12, 0.5, 1)});
  families.push_back({"stencil_2d", gen::stencil_2d(55, 55)});
  families.push_back({"power_law", gen::power_law(2500, 8, 1.15, 2)});
  families.push_back({"circuit", gen::circuit(3000, 2.0, 0.4, 3)});
  return families;
}

std::string pct(double fraction) { return Table::num(fraction * 100.0, 2); }

}  // namespace

int main() {
  benchutil::Reporter reporter("integrity_sweep");
  reporter.banner("robustness extension -- result integrity sweep",
                  "ABFT checksum verification, SDC detection coverage and quarantine");

  const auto families = matrix_families();
  const sim::Engine engine;

  // --- Clean runs: false positives and verify-on pricing. ---
  int clean_runs = 0;
  int false_positives = 0;
  std::vector<double> slowdowns;
  Table clean_table("clean runs: verification overhead (zero injected faults)");
  clean_table.set_header({"matrix", "cores", "off [ms]", "detect [ms]", "slowdown",
                          "outcome"});
  for (const auto& family : families) {
    for (const int cores : {4, 16, 48}) {
      sim::RunSpec off_spec;
      off_spec.ue_count = cores;
      const auto off = engine.run(family.matrix, off_spec);
      for (const auto mode :
           {integrity::VerifyMode::kDetect, integrity::VerifyMode::kCorrect}) {
        sim::RunSpec on_spec = off_spec;
        on_spec.verify = mode;
        const auto on = engine.run(family.matrix, on_spec);
        ++clean_runs;
        if (on.outcome != integrity::Outcome::kClean) ++false_positives;
        const double slowdown = on.seconds / off.seconds;
        slowdowns.push_back(slowdown);
        if (mode == integrity::VerifyMode::kDetect) {
          clean_table.add_row({family.name, Table::integer(cores),
                               Table::num(off.seconds * 1e3, 3),
                               Table::num(on.seconds * 1e3, 3), Table::num(slowdown, 3),
                               std::string(integrity::to_string(on.outcome))});
        }
      }
    }
  }
  const double p95_slowdown = percentile(slowdowns, 0.95);
  reporter.emit(clean_table, "integrity_clean_overhead");

  // --- Detection coverage over injected corruptions. ---
  const int sites = env_int("SCC_SDC_SITES", 200);
  int injected = 0, significant = 0, detected_significant = 0;
  int corrected = 0, correct_attempt_misses = 0;
  Table detect_table("SDC injection: detect-mode coverage per matrix family");
  detect_table.set_header({"matrix", "injected", "significant", "detected",
                           "coverage [%]"});
  for (const auto& family : families) {
    integrity::SdcPlan sdc;
    sdc.rate = 1.0;
    sdc.seed = 0x5dc0 + static_cast<std::uint64_t>(injected);
    const integrity::SdcOracle oracle(sdc);
    int family_significant = 0, family_detected = 0;
    for (int site = 0; site < sites; ++site) {
      const auto report = integrity::run_verification(
          family.matrix, integrity::VerifyMode::kDetect, &oracle,
          static_cast<std::uint64_t>(site));
      ++injected;
      if (!report.significant) continue;
      ++significant;
      ++family_significant;
      if (report.outcome == integrity::Outcome::kDetected) {
        ++detected_significant;
        ++family_detected;
      }
      // Correct mode on the same site: non-sticky, so the recompute must
      // verify clean in exactly two attempts.
      const auto fixed = integrity::run_verification(
          family.matrix, integrity::VerifyMode::kCorrect, &oracle,
          static_cast<std::uint64_t>(site));
      if (fixed.outcome == integrity::Outcome::kCorrected && fixed.attempts == 2) {
        ++corrected;
      } else {
        ++correct_attempt_misses;
      }
    }
    detect_table.add_row(
        {family.name, Table::integer(sites), Table::integer(family_significant),
         Table::integer(family_detected),
         family_significant > 0
             ? pct(static_cast<double>(family_detected) / family_significant)
             : "n/a"});
  }
  const double coverage =
      significant > 0 ? static_cast<double>(detected_significant) / significant : 0.0;
  reporter.emit(detect_table, "integrity_detection");

  // --- Cluster quarantine: bad DRAM withdrawn, zero escapes. ---
  const int request_count = env_int("SCC_SERVE_REQUESTS", 80);
  serve::MatrixPool pool(testbed::suite_scale_from_env());
  serve::WorkloadSpec workload_spec;
  workload_spec.seed = 0x5e12e;
  workload_spec.offered_rps = 1e6;
  workload_spec.request_count = request_count;
  workload_spec.slo_interactive_seconds = 1e6;
  workload_spec.slo_batch_seconds = 1e6;
  const auto requests = serve::generate_workload(workload_spec);

  const auto cluster_config = [&](integrity::VerifyMode verify) {
    cluster::ClusterConfig config;
    config.chip_count = 3;
    config.chip.admission.max_queue_depth = request_count + 1;
    config.chip.admission.interactive_reserve = 0;
    config.chip.verify = verify;
    config.quarantine_threshold = 3;
    config.faults.bad_dram = {{/*chip=*/1, /*rate=*/1.0, /*sticky_rate=*/1.0}};
    return config;
  };
  const auto run_cluster = [&](const cluster::ClusterConfig& config,
                               serve::MatrixPool& run_pool) {
    cluster::ClusterSimulator simulator(config, run_pool);
    return simulator.run(requests);
  };
  const auto verified = run_cluster(cluster_config(integrity::VerifyMode::kCorrect), pool);
  const auto unverified = run_cluster(cluster_config(integrity::VerifyMode::kOff), pool);

  double quarantine_at = -1.0;
  for (const auto& event : verified.log) {
    if (event.kind == "chip_quarantine") {
      quarantine_at = event.seconds;
      break;
    }
  }
  int served_after_quarantine = 0;
  for (const auto& record : verified.records) {
    if (record.outcome == cluster::Outcome::kCompleted && record.chip == 1 &&
        quarantine_at >= 0.0 && record.dispatch_seconds > quarantine_at) {
      ++served_after_quarantine;
    }
  }

  Table quarantine_table("bad-DRAM chip (rate 1.0, sticky): quarantine vs verify-off");
  quarantine_table.set_header({"mode", "completed", "dead-lettered", "detected",
                               "unrecoverable", "escapes", "quarantines"});
  const auto add_mode = [&](const std::string& mode, const cluster::ClusterResult& r) {
    quarantine_table.add_row({mode, Table::integer(r.completed),
                              Table::integer(r.dead_lettered),
                              Table::integer(r.sdc_detected),
                              Table::integer(r.sdc_unrecoverable),
                              Table::integer(r.sdc_escapes),
                              Table::integer(r.quarantines)});
  };
  add_mode("verify=correct", verified);
  add_mode("verify=off", unverified);
  reporter.emit(quarantine_table, "integrity_quarantine");

  // --- Determinism: the corrupted cluster's log across threads x cache. ---
  const auto replay_log = [&](int threads, bool run_cache) {
    setenv("SCC_SIM_THREADS", std::to_string(threads).c_str(), 1);
    serve::MatrixPool replay_pool =
        run_cache ? serve::MatrixPool(testbed::suite_scale_from_env())
                  : serve::MatrixPool::without_run_cache(testbed::suite_scale_from_env());
    const auto result =
        run_cluster(cluster_config(integrity::VerifyMode::kCorrect), replay_pool);
    unsetenv("SCC_SIM_THREADS");
    std::string text;
    for (const auto& event : result.log) {
      text += cluster::describe(event);
      text += '\n';
    }
    return text;
  };
  const std::string log_base = replay_log(1, true);
  const bool replay_identical = !log_base.empty() &&
                                log_base == replay_log(1, false) &&
                                log_base == replay_log(4, true) &&
                                log_base == replay_log(4, false);

  const bool conservation =
      verified.completed + verified.rejected + verified.dead_lettered == request_count;
  const bool ok = reporter.check_claims({
      {"clean runs never fail verification (false positives)", 0.0,
       static_cast<double>(false_positives), 0.0},
      {"p95 verify-on slowdown stays under 1.5x (bool)", 1.0,
       clean_runs > 0 && p95_slowdown < 1.5 ? 1.0 : 0.0, 0.0},
      {"detect mode catches >= 99% of significant corruptions (bool)", 1.0,
       significant > 0 && coverage >= 0.99 ? 1.0 : 0.0, 0.0},
      {"correct mode fixes every non-sticky corruption in 2 attempts (bool)", 1.0,
       corrected > 0 && correct_attempt_misses == 0 ? 1.0 : 0.0, 0.0},
      {"quarantine withdraws the bad-DRAM chip for good (bool)", 1.0,
       verified.quarantines == 1 && verified.chips[1].quarantined &&
               served_after_quarantine == 0 && conservation
           ? 1.0
           : 0.0,
       0.0},
      {"verify-on delivers zero escapes cluster-wide (bool)", 1.0,
       verified.sdc_escapes == 0 ? 1.0 : 0.0, 0.0},
      {"verify-off leaks wrong products from the bad chip (bool)", 1.0,
       unverified.sdc_escapes > 0 && unverified.sdc_detected == 0 ? 1.0 : 0.0, 0.0},
      {"corrupted-cluster logs byte-identical across threads and run-cache (bool)", 1.0,
       replay_identical ? 1.0 : 0.0, 0.0},
  });
  return reporter.finish(ok);
}
