// Figure 5: parallel SpMV performance under the default ("standard") UE-to-
// core mapping vs. the paper's distance-reduction mapping, across core
// counts. The paper reports speedups up to ~1.23, growing with core count,
// and identical results at 1-2 cores.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace scc;
  benchutil::Reporter rep("fig5_mapping");
  rep.banner("Figure 5", "standard vs. distance-reduction mapping");
  const auto suite = benchutil::load_suite();
  const sim::Engine engine;

  Table table("suite-average performance by mapping configuration (conf0)");
  table.set_header({"cores", "standard (MFLOPS)", "dist-reduction (MFLOPS)", "speedup",
                    "avg hops std", "avg hops dr"});

  double best_speedup = 0.0;
  double speedup_at_2 = 0.0;
  for (int cores : benchutil::core_count_sweep()) {
    const double std_perf =
        benchutil::suite_mean_gflops(engine, suite, cores, chip::MappingPolicy::kStandard) *
        1000.0;
    const double dr_perf = benchutil::suite_mean_gflops(
                               engine, suite, cores, chip::MappingPolicy::kDistanceReduction) *
                           1000.0;
    const double speedup = dr_perf / std_perf;
    best_speedup = std::max(best_speedup, speedup);
    if (cores == 2) speedup_at_2 = speedup;
    table.add_row(
        {Table::integer(cores), Table::num(std_perf, 1), Table::num(dr_perf, 1),
         Table::num(speedup, 3),
         Table::num(chip::average_hops(
                        chip::map_ues_to_cores(chip::MappingPolicy::kStandard, cores)), 2),
         Table::num(chip::average_hops(chip::map_ues_to_cores(
                        chip::MappingPolicy::kDistanceReduction, cores)), 2)});
  }
  rep.emit(table, "fig5_mapping");

  const bool ok = rep.check_claims(
      {{"max speedup of distance reduction (paper: up to ~1.23)", 1.23, best_speedup, 0.15},
       {"no difference at 2 cores (same core sets)", 1.0, speedup_at_2, 0.001}});
  return rep.finish(ok);
}
