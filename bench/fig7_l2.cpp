// Figure 7: SpMV performance with the L2 caches disabled, relative to the
// default configuration, across core counts. The paper reports a degradation
// that grows with core count, reaching ~30% at 48 cores, and notes that with
// L2 off the working-set/performance relation of Fig 6 disappears.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace scc;
  benchutil::Reporter rep("fig7_l2");
  rep.banner("Figure 7", "effect of disabling the per-core L2 caches");
  const auto suite = benchutil::load_suite();

  sim::EngineConfig cfg_with;
  sim::EngineConfig cfg_without;
  cfg_without.hierarchy.l2_enabled = false;
  const sim::Engine with_l2(cfg_with);
  const sim::Engine without_l2(cfg_without);

  Table table("suite-average performance with/without L2 (distance-reduction, conf0)");
  table.set_header({"cores", "with L2 (MFLOPS)", "without L2 (MFLOPS)", "degradation %"});

  double degradation_48 = 0.0;
  double degradation_4 = 0.0;
  for (int cores : benchutil::core_count_sweep()) {
    const double a = benchutil::suite_mean_gflops(with_l2, suite, cores,
                                                  chip::MappingPolicy::kDistanceReduction) *
                     1000.0;
    const double b = benchutil::suite_mean_gflops(without_l2, suite, cores,
                                                  chip::MappingPolicy::kDistanceReduction) *
                     1000.0;
    const double degradation = 1.0 - b / a;
    if (cores == 48) degradation_48 = degradation;
    if (cores == 4) degradation_4 = degradation;
    table.add_row({Table::integer(cores), Table::num(a, 1), Table::num(b, 1),
                   Table::num(degradation * 100.0, 1)});
  }
  rep.emit(table, "fig7_l2");

  // Secondary observation: with L2 off, per-matrix perf at 48 cores loses
  // its correlation with working-set size (everything misses).
  std::vector<double> small_no_l2;
  std::vector<double> large_no_l2;
  for (const auto& e : suite) {
    const double p =
        without_l2.run(e.matrix, 48, chip::MappingPolicy::kDistanceReduction).mflops();
    if (e.working_set / 48 < 256 * 1024) {
      small_no_l2.push_back(p);
    } else {
      large_no_l2.push_back(p);
    }
  }
  const double flat_ratio = mean(small_no_l2) / mean(large_no_l2);
  std::cout << "\nWithout L2 @48 cores, small/large performance ratio: "
            << Table::num(flat_ratio, 2) << " (with L2 this ratio is >> 1; flat ~1 means the"
            << " working-set effect disappeared, as the paper observes)\n";

  const bool ok = rep.check_claims(
      // The surviving paper text prints "3% when using 48 cores" with a digit
      // lost to OCR; 30% is the most conservative reading (could be 3x%/5x%).
      // Our trace model credits L2 somewhat more than that reading, hence the
      // wide band; EXPERIMENTS.md discusses the deviation.
      {{"degradation at 48 cores (paper: '3_%', read as ~30%)", 0.30, degradation_48, 0.80},
       {"degradation grows with core count (1=yes)", 1.0,
        degradation_48 > degradation_4 ? 1.0 : 0.0, 0.0},
       {"no small-matrix boost without L2 (ratio ~1)", 1.0, flat_ratio, 0.45}});
  return rep.finish(ok);
}
