// Table I: the matrix benchmark suite -- n, nnz, nnz/n and working set for
// all 32 matrices, plus the structural properties the later figures key on.
#include <iostream>

#include "bench_common.hpp"
#include "sparse/properties.hpp"

int main() {
  using namespace scc;
  benchutil::Reporter rep("table1_suite");
  rep.banner("Table I", "matrix benchmark suite");
  const auto suite = benchutil::load_suite();

  Table table("Table I -- matrix benchmark suite (synthetic stand-ins, see DESIGN.md)");
  table.set_header({"#", "Matrix", "family", "n", "nnz", "nnz/n", "ws (MB)", "bandwidth",
                    "x-line reuse"});
  for (const auto& e : suite) {
    table.add_row({Table::integer(e.id), e.name, e.family, Table::integer(e.matrix.rows()),
                   Table::integer(e.matrix.nnz()), Table::num(e.nnz_per_row, 1),
                   Table::num(static_cast<double>(e.working_set) / (1024.0 * 1024.0), 2),
                   Table::integer(sparse::bandwidth(e.matrix)),
                   Table::num(sparse::x_line_reuse_fraction(e.matrix), 2)});
  }
  rep.emit(table, "table1_suite");

  // Regime checks that the paper's Fig 6 discussion depends on.
  int fits_l2_at_24 = 0;
  int fits_l2_at_8 = 0;
  bytes_t min_ws = suite.front().working_set;
  bytes_t max_ws = min_ws;
  for (const auto& e : suite) {
    if (e.working_set / 24 < 256 * 1024) ++fits_l2_at_24;
    if (e.working_set / 8 < 256 * 1024) ++fits_l2_at_8;
    min_ws = std::min(min_ws, e.working_set);
    max_ws = std::max(max_ws, e.working_set);
  }
  std::cout << "\nSuite regime summary:\n"
            << "  working-set range: " << Table::num(static_cast<double>(min_ws) / 1048576.0, 2)
            << " - " << Table::num(static_cast<double>(max_ws) / 1048576.0, 2) << " MB\n"
            << "  matrices with ws/core < 256KB at 8 cores:  " << fits_l2_at_8 << "\n"
            << "  matrices with ws/core < 256KB at 24 cores: " << fits_l2_at_24 << "\n";

  const bool ok = rep.check_claims(
      {{"suite size", 32.0, static_cast<double>(suite.size()), 0.0},
       {"no matrix fits L2 per-core at 8 cores (paper, Sec IV-B)", 0.0,
        static_cast<double>(fits_l2_at_8), 0.0},
       {"many matrices fit L2 per-core at 24 cores", 14.0, static_cast<double>(fits_l2_at_24),
        0.5},
       {"shortest rows at #24 (rajat15)", 2.6, suite[23].nnz_per_row, 0.3},
       {"shortest rows at #25 (ncvxbqp1)", 2.8, suite[24].nnz_per_row, 0.3}});
  return rep.finish(ok);
}
