// Figure 4: the mapping diagrams -- which physical cores host the units of
// execution under (a) the standard and (b) the distance-reduction
// configuration. The paper draws the chip; we print it: a 6x4 tile grid,
// each tile showing its two cores, with hosted UE ranks marked. The paper's
// worked example (4 UEs -> cores 0,1,10,11 under distance reduction) is
// checked explicitly.
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace scc;

void print_chip(std::ostream& os, const std::vector<int>& cores) {
  // rank_of[core] = UE rank or -1.
  std::vector<int> rank_of(static_cast<std::size_t>(chip::kCoreCount), -1);
  for (std::size_t rank = 0; rank < cores.size(); ++rank) {
    rank_of[static_cast<std::size_t>(cores[rank])] = static_cast<int>(rank);
  }
  // Print rows top (y=3) to bottom (y=0) so the MC rows sit like Fig 1(a).
  for (int y = chip::kMeshHeight - 1; y >= 0; --y) {
    std::ostringstream top, bottom;
    for (int x = 0; x < chip::kMeshWidth; ++x) {
      const int tile = y * chip::kMeshWidth + x;
      const auto pair = chip::cores_of_tile(tile);
      auto cell = [&](int core) {
        std::ostringstream c;
        const int rank = rank_of[static_cast<std::size_t>(core)];
        c << std::setw(2) << core;
        if (rank >= 0) {
          c << "=U" << std::left << std::setw(2) << rank << std::right;
        } else {
          c << "    ";
        }
        return c.str();
      };
      top << '|' << cell(pair[0]) << ' ' << cell(pair[1]);
    }
    top << '|';
    os << top.str() << '\n';
  }
  // Memory-controller legend row.
  os << "MC0 @(0,0)  MC1 @(5,0)  MC2 @(0,2)  MC3 @(5,2)   (tile rows shown top=y3)\n";
}

}  // namespace

int main() {
  benchutil::Reporter rep("fig4_mapping_diagram");
  rep.banner("Figure 4", "UE-to-core mapping diagrams (standard vs distance reduction)");

  bool example_ok = true;
  for (int ues : {4, 24}) {
    for (auto policy :
         {chip::MappingPolicy::kStandard, chip::MappingPolicy::kDistanceReduction}) {
      const auto cores = chip::map_ues_to_cores(policy, ues);
      std::cout << "\n-- " << chip::to_string(policy) << ", " << ues << " UEs --\n";
      print_chip(std::cout, cores);
      std::cout << "avg hops " << Table::num(chip::average_hops(cores), 2)
                << ", max UEs per MC " << chip::max_cores_per_mc(cores) << '\n';
    }
  }

  // The paper's example: 4 UEs under distance reduction -> cores 0,1,10,11.
  const auto example =
      chip::map_ues_to_cores(chip::MappingPolicy::kDistanceReduction, 4);
  example_ok = example == std::vector<int>{0, 1, 10, 11};

  const bool ok = rep.check_claims(
      {{"4-UE distance-reduction example is cores {0,1,10,11} (1=yes)", 1.0,
        example_ok ? 1.0 : 0.0, 0.0},
       {"standard 4-UE example is cores {0,1,2,3} (1=yes)", 1.0,
        chip::map_ues_to_cores(chip::MappingPolicy::kStandard, 4) ==
                std::vector<int>{0, 1, 2, 3}
            ? 1.0
            : 0.0,
        0.0}});
  return rep.finish(ok);
}
