// Figure 6: per-matrix performance against working-set size at 8, 24 and 48
// cores. The paper's observation: with 8 cores no matrix's per-core share
// fits the 256 KB L2 and performance shows no relation to working set; with
// 24/48 cores the small matrices become L2-resident and jump to ~1 GFLOPS
// while large ones stay in the ~450 MFLOPS band -- except the short-row
// matrices #24/#25, which stay slow despite being small.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace scc;
  benchutil::Reporter rep("fig6_workingset");
  rep.banner("Figure 6", "performance vs. working-set size at 8/24/48 cores");
  const auto suite = benchutil::load_suite();
  const sim::Engine engine;

  Table table("per-matrix performance (MFLOPS, distance-reduction mapping, conf0)");
  table.set_header({"#", "matrix", "ws (MB)", "8 cores", "24 cores", "48 cores",
                    "fits L2 @24?"});

  std::vector<double> small24;  // L2-resident matrices at 24 cores
  std::vector<double> large24;
  double perf24_m24 = 0.0;  // the short-row outliers
  double perf24_m25 = 0.0;
  for (const auto& e : suite) {
    const double p8 =
        engine.run(e.matrix, 8, chip::MappingPolicy::kDistanceReduction).mflops();
    const double p24 =
        engine.run(e.matrix, 24, chip::MappingPolicy::kDistanceReduction).mflops();
    const double p48 =
        engine.run(e.matrix, 48, chip::MappingPolicy::kDistanceReduction).mflops();
    const bool fits24 = e.working_set / 24 < 256 * 1024;
    table.add_row({Table::integer(e.id), e.name,
                   Table::num(static_cast<double>(e.working_set) / 1048576.0, 2),
                   Table::num(p8, 0), Table::num(p24, 0), Table::num(p48, 0),
                   fits24 ? "yes" : "no"});
    if (e.id == 24) perf24_m24 = p24;
    if (e.id == 25) perf24_m25 = p24;
    if (fits24 && e.id != 24 && e.id != 25) {
      small24.push_back(p24);
    } else if (!fits24) {
      large24.push_back(p24);
    }
  }
  rep.emit(table, "fig6_workingset");

  const double peak_small = max_value(small24);
  const double mean_large = mean(large24);
  std::cout << "\nAt 24 cores: best L2-resident matrix " << Table::num(peak_small, 0)
            << " MFLOPS; large-matrix average " << Table::num(mean_large, 0)
            << " MFLOPS; short-row outliers #24/#25: " << Table::num(perf24_m24, 0) << " / "
            << Table::num(perf24_m25, 0) << " MFLOPS\n";

  const bool ok = rep.check_claims(
      {{"peak small-matrix perf @24 cores (paper: ~1000 MFLOPS)", 1000.0, peak_small, 0.5},
       {"large-matrix band @24 cores (paper: ~450 MFLOPS)", 450.0, mean_large, 0.6},
       {"small matrices boosted vs large (ratio > 1)", 2.0, peak_small / mean_large, 0.6},
       {"outlier #24 below the small-matrix peak (ratio)", 0.4, perf24_m24 / peak_small, 0.9},
       {"outlier #25 below the small-matrix peak (ratio)", 0.4, perf24_m25 / peak_small,
        0.9}});
  return rep.finish(ok);
}
