// Extension study (not a paper figure): would the storage-format
// optimizations the paper cites -- register blocking (Williams et al. [11])
// and ELL/HYB padding (Bell & Garland [9]) -- have helped SpMV on the SCC?
// The engine replays each format's reference stream through the same
// TLB/cache/latency/bandwidth model used for every reproduced figure.
//
// Expected physics: BCSR wins on FEM-like matrices (low fill, amortized
// indexing), loses when fill-in explodes; ELL wins on uniform row lengths,
// loses badly on skewed ones (padded slots execute); HYB tracks ELL with the
// pathology capped.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace scc;
  benchutil::Reporter rep("ext_format_study");
  rep.banner("Format study (extension)",
             "CSR vs ELL vs BCSR vs HYB on the simulated SCC, 24 cores");
  const auto suite = benchutil::load_suite();
  const sim::Engine engine;

  const std::vector<sim::StorageFormat> formats = {
      sim::StorageFormat::kCsr, sim::StorageFormat::kEll, sim::StorageFormat::kBcsr2,
      sim::StorageFormat::kBcsr4, sim::StorageFormat::kHyb};
  // One representative per structural family plus the short-row outlier.
  const std::vector<int> ids = {2, 4, 9, 14, 21, 24, 29};

  Table table("per-matrix MFLOPS by storage format (conf0, distance-reduction, 24 cores)");
  table.set_header({"#", "matrix", "family", "CSR", "ELL", "BCSR b=2", "BCSR b=4", "HYB",
                    "best"});
  double ell_on_skewed = 0.0;
  double csr_on_skewed = 0.0;
  double hyb_on_skewed = 0.0;
  bool bcsr2_never_worse_than_bcsr4 = true;
  double bcsr2_on_mass = 0.0;
  double csr_on_mass = 0.0;
  for (int id : ids) {
    const auto& e = suite[static_cast<std::size_t>(id - 1)];
    std::vector<std::string> row = {Table::integer(id), e.name, e.family};
    double best = 0.0;
    double bcsr2 = 0.0;
    std::string best_name;
    for (const auto format : formats) {
      const double mflops =
          engine.run_format(e.matrix, 24, chip::MappingPolicy::kDistanceReduction, format)
              .mflops();
      row.push_back(Table::num(mflops, 0));
      if (mflops > best) {
        best = mflops;
        best_name = sim::to_string(format);
      }
      if (format == sim::StorageFormat::kBcsr2) bcsr2 = mflops;
      if (format == sim::StorageFormat::kBcsr4 && mflops > bcsr2 + 1e-9) {
        bcsr2_never_worse_than_bcsr4 = false;  // fill-in grows with b on our suite
      }
      if (id == 21) {  // fp: skewed power-law rows
        if (format == sim::StorageFormat::kEll) ell_on_skewed = mflops;
        if (format == sim::StorageFormat::kCsr) csr_on_skewed = mflops;
        if (format == sim::StorageFormat::kHyb) hyb_on_skewed = mflops;
      }
      if (id == 29) {  // bcsstm36: narrow band, natural 2x2-ish blocks
        if (format == sim::StorageFormat::kBcsr2) bcsr2_on_mass = mflops;
        if (format == sim::StorageFormat::kCsr) csr_on_mass = mflops;
      }
    }
    row.push_back(best_name);
    table.add_row(std::move(row));
  }
  rep.emit(table, "ext_format_study");

  std::cout << "\nReading: CSR holds up remarkably well on the SCC -- the in-order P54C gains"
            << "\nlittle from padding/coalescing tricks designed for SIMD/GPU pipelines."
            << "\nBCSR only wins where near-perfect dense blocks exist (bcsstm36); ELL"
            << "\ncollapses on skewed rows (fp: " << Table::num(ell_on_skewed, 0) << " vs CSR "
            << Table::num(csr_on_skewed, 0) << " MFLOPS) while HYB caps the damage ("
            << Table::num(hyb_on_skewed, 0) << ") -- consistent with why Bell & Garland's GPU"
            << "\nlibrary (the paper's Fig 10 comparator) defaults to HYB.\n";

  const bool ok = rep.check_claims(
      {{"ELL slower than CSR on skewed rows (1=yes)", 1.0,
        ell_on_skewed < csr_on_skewed ? 1.0 : 0.0, 0.0},
       {"HYB recovers most of ELL's skew loss (1=yes)", 1.0,
        hyb_on_skewed > 2.0 * ell_on_skewed ? 1.0 : 0.0, 0.0},
       {"larger blocks never pay on this suite (1=yes)", 1.0,
        bcsr2_never_worse_than_bcsr4 ? 1.0 : 0.0, 0.0},
       {"BCSR b=2 beats CSR on the blocked mass matrix (1=yes)", 1.0,
        bcsr2_on_mass > csr_on_mass ? 1.0 : 0.0, 0.0}});
  return rep.finish(ok);
}
