// Figure 8: impact of the irregular accesses to x. Compares the original
// kernel against the "no x misses" instrumented version (every x reference
// reads x[0]). Paper: speedup > 1.10 for more than half the matrices at
// every core count, and > 2x for the short-row irregular matrices #24/#25 --
// evidence that locality, not just bandwidth, dominates SpMV on the SCC.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace scc;
  benchutil::Reporter rep("fig8_irregular");
  rep.banner("Figure 8", "impact of irregular accesses on vector x");
  const auto suite = benchutil::load_suite();
  const sim::Engine engine;

  const std::vector<int> core_counts = {1, 8, 24, 48};
  Table table("per-matrix speedup of the no-x-miss kernel (distance-reduction, conf0)");
  table.set_header({"#", "matrix", "family", "x1 core", "x8 cores", "x24 cores", "x48 cores"});

  double speedup_m24 = 0.0;
  double speedup_m25 = 0.0;
  std::vector<double> fraction_above_110;  // per core count
  std::vector<std::vector<double>> speedups_by_count(core_counts.size());
  for (const auto& e : suite) {
    std::vector<std::string> row = {Table::integer(e.id), e.name, e.family};
    for (std::size_t c = 0; c < core_counts.size(); ++c) {
      const double base = engine.run(e.matrix, core_counts[c],
                                     chip::MappingPolicy::kDistanceReduction,
                                     sim::SpmvVariant::kCsr)
                              .seconds;
      const double noxm = engine.run(e.matrix, core_counts[c],
                                     chip::MappingPolicy::kDistanceReduction,
                                     sim::SpmvVariant::kCsrNoXMiss)
                              .seconds;
      const double speedup = base / noxm;
      speedups_by_count[c].push_back(speedup);
      row.push_back(Table::num(speedup, 2));
      if (core_counts[c] == 24 && e.id == 24) speedup_m24 = speedup;
      if (core_counts[c] == 24 && e.id == 25) speedup_m25 = speedup;
    }
    table.add_row(std::move(row));
  }
  rep.emit(table, "fig8_irregular");

  std::cout << '\n';
  double min_fraction = 1.0;
  for (std::size_t c = 0; c < core_counts.size(); ++c) {
    const double frac = fraction_above(speedups_by_count[c], 1.10);
    min_fraction = std::min(min_fraction, frac);
    std::cout << "cores=" << core_counts[c] << ": mean speedup "
              << Table::num(mean(speedups_by_count[c]), 2) << ", fraction of matrices > 1.10: "
              << Table::num(frac * 100.0, 0) << "%\n";
  }

  const bool ok = rep.check_claims(
      {{"fraction with speedup>1.10 at every core count (paper: >50%)", 0.60, min_fraction,
        0.4},
       {"outlier #24 speedup at 24 cores (paper: >2)", 2.2, speedup_m24, 0.5},
       {"outlier #25 speedup at 24 cores (paper: >2)", 2.2, speedup_m25, 0.5}});
  return rep.finish(ok);
}
