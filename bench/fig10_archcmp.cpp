// Figure 10: architectural comparison -- average SpMV performance (a) and
// power efficiency (b) of the SCC against an Itanium2 Montvale, a Xeon
// X5570, an Opteron 6174 and two NVIDIA Teslas (C1060, M2050). SCC numbers
// come from the simulator; the reference machines use the roofline SpMV
// model of src/archcmp (see its header for the calibration note).
// Paper: the SCC beats only the Itanium2; the M2050 averages ~7.9 GFLOPS
// (7.6x SCC-conf0) and ~35 MFLOPS/W, topping both charts.
#include <iostream>

#include "archcmp/machines.hpp"
#include "bench_common.hpp"
#include "scc/power.hpp"

int main() {
  using namespace scc;
  benchutil::Reporter rep("fig10_archcmp");
  rep.banner("Figure 10", "architectural comparison: CPUs, GPUs and the SCC");
  const auto suite = benchutil::load_suite();

  // SCC measurements (48 cores, distance-reduction mapping).
  const chip::PowerModel power;
  struct SccPoint {
    std::string name;
    double gflops;
    double watts;
  };
  std::vector<SccPoint> scc_points;
  for (const auto& [name, freq] : {std::pair{std::string{"SCC conf0"},
                                             chip::FrequencyConfig::conf0()},
                                   std::pair{std::string{"SCC conf1"},
                                             chip::FrequencyConfig::conf1()}}) {
    sim::EngineConfig cfg;
    cfg.freq = freq;
    const double gflops = benchutil::suite_mean_gflops(
        sim::Engine(cfg), suite, 48, chip::MappingPolicy::kDistanceReduction);
    scc_points.push_back({name, gflops, power.full_system_watts(freq)});
  }

  Table table("Fig 10: full-system SpMV performance and power efficiency");
  table.set_header({"system", "GFLOPS/s", "watts", "MFLOPS/W"});
  struct Row {
    std::string name;
    double gflops;
    double mflops_per_watt;
  };
  std::vector<Row> rows;
  for (const auto& m : archcmp::reference_machines()) {
    rows.push_back({m.name, archcmp::predicted_spmv_gflops(m),
                    archcmp::predicted_mflops_per_watt(m)});
    table.add_row({m.name, Table::num(rows.back().gflops, 2), Table::num(m.tdp_watts, 0),
                   Table::num(rows.back().mflops_per_watt, 1)});
  }
  for (const auto& p : scc_points) {
    rows.push_back({p.name, p.gflops, p.gflops * 1000.0 / p.watts});
    table.add_row({p.name, Table::num(p.gflops, 2), Table::num(p.watts, 1),
                   Table::num(rows.back().mflops_per_watt, 1)});
  }
  rep.emit(table, "fig10_archcmp");

  auto find = [&](const std::string& name) -> const Row& {
    for (const auto& r : rows) {
      if (r.name == name) return r;
    }
    throw std::runtime_error("row not found: " + name);
  };
  const Row& itanium = find("Itanium2 Montvale");
  const Row& m2050 = find("Tesla M2050");
  const Row& scc0 = find("SCC conf0");

  const bool ok = rep.check_claims(
      {{"M2050 average (paper: ~7.9 GFLOPS)", 7.9, m2050.gflops, 0.15},
       {"M2050 speedup over SCC conf0 (paper: ~7.6x)", 7.6, m2050.gflops / scc0.gflops, 0.35},
       {"SCC outperforms the Itanium2 (perf ratio > 1)", 1.25,
        scc0.gflops / itanium.gflops, 0.5},
       {"SCC beats Itanium2 on MFLOPS/W by a larger margin", 1.5,
        scc0.mflops_per_watt / itanium.mflops_per_watt, 0.5},
       {"M2050 tops power efficiency (paper: ~35 MFLOPS/W)", 35.0, m2050.mflops_per_watt,
        0.15}});
  return rep.finish(ok);
}
