// Autotuner extension sweep: tuned serving vs the CSR-only baseline, plus
// the determinism contract of the tuning decision log.
//
// Claims (all self-calibrating, so they hold at any SCC_TESTBED_SCALE):
//  * tuned dispatch (format/reorder/core-count pinned by the autotuner)
//    lowers p95 latency at saturation on the irregular testbed slice
//    {26 circuit, 27 power-law} under the matrix-aware policy -- the slice
//    where one-size CSR partitioning leaves the most on the table;
//  * the tuning decision log is byte-identical across SCC_SIM_THREADS in
//    {1, hw} crossed with run-cache {off, on, persisted}: exploration is
//    deterministic and run-cache replay is bit-exact, so the tuner commits
//    to the same winners no matter how the exploration was priced;
//  * a second tuner over the same pool serves every decision from the
//    shared TuningCache (no re-exploration).
//
// Env knobs (besides the shared bench ones): SCC_SERVE_REQUESTS overrides
// the per-point request count (CI smoke uses a small value).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "serve/loadgen.hpp"
#include "serve/simulator.hpp"
#include "tune/autotuner.hpp"

namespace {

using namespace scc;

/// The irregular testbed slice: 26 (circuit, nmos3 stand-in) and 27
/// (power-law, net25 stand-in) -- short irregular rows, the matrices where
/// format and core-count choice move the needle most.
const std::vector<int> kIrregularMix = {26, 27};

int requests_from_env(int fallback) {
  const char* value = std::getenv("SCC_SERVE_REQUESTS");
  if (value == nullptr || *value == '\0') return fallback;
  return std::max(1, std::atoi(value));
}

/// Saturation measurement: the whole stream arrives at once into a queue
/// deep enough to hold it and the policy drains the backlog (same harness
/// as serve_sweep's capacity measurement).
serve::ServeResult drain_backlog(serve::MatrixPool& pool, bool autotune, int request_count) {
  serve::WorkloadSpec spec;
  spec.seed = 0x5e12e;
  spec.offered_rps = 1e6;
  spec.request_count = request_count;
  spec.matrix_mix = kIrregularMix;
  spec.slo_interactive_seconds = 1e6;  // capacity, not shedding
  spec.slo_batch_seconds = 1e6;
  serve::ServeConfig config;
  config.policy = serve::SchedulingPolicy::kMatrixAware;
  config.autotune = autotune;
  config.admission.max_queue_depth = request_count + 1;
  config.admission.interactive_reserve = 0;
  serve::Simulator simulator(config, pool);
  return simulator.run(serve::generate_workload(spec));
}

/// Decision log of a fresh tuner over the irregular slice under one
/// (thread count, run-cache mode) variant. A fresh pool per call means a
/// fresh TuningCache, so every variant re-decides from scratch.
enum class CacheMode { kOff, kOn, kPersisted };

std::string decision_log_for(int threads, CacheMode mode, const std::string& snapshot) {
  common::set_sim_threads(threads);
  const double scale = testbed::suite_scale_from_env();
  serve::MatrixPool pool =
      mode == CacheMode::kOff
          ? serve::MatrixPool::without_run_cache(scale)
          : serve::MatrixPool(scale, sim::RunCacheConfig{1024, 0, snapshot, 0});
  tune::AutotuneConfig tuning;
  tune::Autotuner tuner(sim::EngineConfig{}, tuning, pool.tuning_cache(tuning.cache),
                        pool.run_cache());
  for (const int id : kIrregularMix) tuner.decide(pool.entry(id).matrix, id);
  return tuner.decision_log_text();
}

}  // namespace

int main() {
  benchutil::Reporter reporter("autotune_sweep");
  reporter.banner("autotuner extension -- tuned serving sweep",
                  "online format/mapping autotuning vs the CSR-only serving baseline");

  const int request_count = requests_from_env(160);

  // --- Saturation: CSR-only vs tuned dispatch on the irregular slice. ---
  serve::MatrixPool pool(testbed::suite_scale_from_env());
  Table saturation("irregular slice {26,27}, matrix-aware, backlog drain");
  saturation.set_header(
      {"dispatch", "req/s", "p95 [ms]", "p99 [ms]", "jobs", "explored", "tune hits"});
  double p95_untuned = 0.0;
  double p95_tuned = 0.0;
  for (const bool autotune : {false, true}) {
    const auto result = drain_backlog(pool, autotune, request_count);
    (autotune ? p95_tuned : p95_untuned) = result.latency_total.p95;
    saturation.add_row({autotune ? "tuned" : "csr-only",
                        Table::num(result.throughput_rps, 1),
                        Table::num(result.latency_total.p95 * 1e3, 3),
                        Table::num(result.latency_total.p99 * 1e3, 3),
                        Table::integer(static_cast<long long>(result.jobs.size())),
                        Table::integer(static_cast<long long>(result.tuning.explored)),
                        Table::integer(static_cast<long long>(result.tuning.cache_hits))});
  }
  reporter.emit(saturation, "autotune_saturation");

  // --- Shared-cache reuse: a second tuner re-decides for free. ---
  tune::AutotuneConfig tuning;
  tune::Autotuner second(sim::EngineConfig{}, tuning, pool.tuning_cache(tuning.cache),
                         pool.run_cache());
  for (const int id : kIrregularMix) second.decide(pool.entry(id).matrix, id);
  const tune::Autotuner::Counters reuse = second.counters();

  // --- Determinism: the decision log across threads x run-cache modes. ---
  // `hw` is whatever the environment would use (SCC_SIM_THREADS or the
  // hardware concurrency); the persisted variant prices one cold pass that
  // snapshots on pool destruction, then replays the log from the snapshot.
  common::set_sim_threads(0);
  const int hw_threads = common::sim_thread_count();
  const std::string snapshot =
      (std::filesystem::temp_directory_path() / "autotune_sweep_runcache.snap").string();
  std::filesystem::remove(snapshot);

  const std::string reference = decision_log_for(1, CacheMode::kOff, "");
  Table determinism("decision log vs reference (threads=1, run-cache off)");
  determinism.set_header({"threads", "run cache", "log bytes", "identical"});
  bool logs_identical = true;
  for (const int threads : {1, hw_threads}) {
    for (const CacheMode mode : {CacheMode::kOff, CacheMode::kOn, CacheMode::kPersisted}) {
      const std::string log =
          decision_log_for(threads, mode, mode == CacheMode::kPersisted ? snapshot : "");
      const bool same = log == reference;
      logs_identical = logs_identical && same;
      determinism.add_row(
          {Table::integer(threads),
           mode == CacheMode::kOff ? "off"
                                   : (mode == CacheMode::kOn ? "on" : "persisted"),
           Table::integer(static_cast<long long>(log.size())), same ? "yes" : "NO"});
    }
  }
  common::set_sim_threads(0);
  std::filesystem::remove(snapshot);
  reporter.emit(determinism, "autotune_determinism");

  const bool ok = reporter.check_claims({
      {"tuned dispatch lowers p95 at saturation on the irregular slice (bool)", 1.0,
       p95_tuned < p95_untuned ? 1.0 : 0.0, 0.0},
      {"decision log byte-identical across threads x run-cache modes (bool)", 1.0,
       logs_identical ? 1.0 : 0.0, 0.0},
      {"second tuner serves every decision from the shared cache (bool)", 1.0,
       reuse.cache_hits == static_cast<std::uint64_t>(kIrregularMix.size()) &&
               reuse.explored == 0 && reuse.predicted == 0
           ? 1.0
           : 0.0,
       0.0},
  });
  return reporter.finish(ok);
}
