// Simulator-performance bench (MODEL.md section 7): how fast does the host
// churn through simulated nonzeros, and what do the engine fast paths buy?
//
//   1. Host-parallel rank replay: one 48-UE run timed at SCC_SIM_THREADS=1
//      versus the machine's hardware concurrency. The speedup claim
//      self-calibrates to the host (>= 2x with 4+ hardware threads, >= 1.2x
//      with 2-3, and merely "no worse than ~0.75x" on a single-CPU runner
//      where the parallel path degenerates to the serial loop).
//   2. Engine-run memoization: a serving workload priced cold (RunCache
//      disabled) versus warm (fresh ServiceModel on a pool whose shared
//      RunCache a previous serve run populated). Warm replay must be >= 5x
//      faster -- hits skip the trace replay entirely, so this holds at any
//      thread count and any SCC_TESTBED_SCALE.
//
// Both experiments replay identical simulations; the equivalence tests
// (tests/test_sim_parallel.cpp) prove the numbers are bit-identical, this
// bench only prices the wall clock.
#include <chrono>
#include <functional>
#include <thread>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "gen/generators.hpp"
#include "serve/loadgen.hpp"
#include "serve/simulator.hpp"
#include "sim/run_cache.hpp"

namespace {

using namespace scc;

/// Best-of-`reps` wall seconds of `fn` (min filters scheduler noise).
double best_wall_seconds(int reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (rep == 0 || wall < best) best = wall;
  }
  return best;
}

/// Price every job of `jobs` through a fresh ServiceModel on `pool` (fresh so
/// the per-model JobTiming map starts empty and only the engine-level
/// RunCache distinguishes cold from warm).
double price_jobs_seconds(const serve::ServeConfig& config, serve::MatrixPool& pool,
                          const std::vector<serve::JobRecord>& jobs) {
  serve::ServiceModel model(config.engine, pool);
  const auto t0 = std::chrono::steady_clock::now();
  for (const serve::JobRecord& job : jobs) {
    model.timing(job.matrix_id, job.cores);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  benchutil::Reporter reporter("sim_throughput");
  reporter.banner("Simulator performance",
                  "host-parallel rank replay + engine-run memoization");

  // ---- 1. rank-replay throughput: threads = 1 vs hardware concurrency ----
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const sparse::CsrMatrix matrix = gen::random_uniform(60000, 12, 0x51f7);
  const sim::Engine engine;
  sim::RunSpec spec;
  spec.ue_count = 48;

  engine.run(matrix, spec);  // warm-up (testbed pages, allocator)
  common::set_sim_threads(1);
  const double serial_s = best_wall_seconds(3, [&] { engine.run(matrix, spec); });
  common::set_sim_threads(static_cast<int>(hw));
  const double parallel_s = best_wall_seconds(3, [&] { engine.run(matrix, spec); });
  common::set_sim_threads(0);  // back to the environment default

  const double nnz = static_cast<double>(matrix.nnz());
  const double speedup = serial_s > 0.0 ? serial_s / parallel_s : 1.0;
  Table threads("48-UE run, 60000x12 random matrix (simulated numbers identical)");
  threads.set_header({"host threads", "wall [ms]", "simulated Mnnz/s", "speedup"});
  threads.add_row({"1", Table::num(serial_s * 1e3, 2),
                   Table::num(nnz / serial_s / 1e6, 1), "1.00x"});
  threads.add_row({Table::integer(static_cast<long long>(hw)),
                   Table::num(parallel_s * 1e3, 2), Table::num(nnz / parallel_s / 1e6, 1),
                   Table::num(speedup, 2) + "x"});
  reporter.emit(threads, "sim_throughput_threads");

  // Self-calibrating target: the CI runner may expose a single CPU, where the
  // "parallel" path is the serial loop and only overhead could be measured.
  const double target = hw >= 4 ? 2.0 : hw >= 2 ? 1.2 : 0.75;

  // ---- 2. memoized serve replay: cold vs warm ----
  const serve::WorkloadSpec workload;  // defaults: 200 requests, mix 26/27/28/30
  const auto requests = serve::generate_workload(workload);
  const serve::ServeConfig config;

  serve::MatrixPool pool(testbed::suite_scale_from_env());
  serve::MatrixPool pool_nocache(testbed::suite_scale_from_env(), /*enable_run_cache=*/false);
  for (const int id : workload.matrix_mix) {
    pool.entry(id);  // prefetch so matrix building never pollutes the timings
    pool_nocache.entry(id);
  }

  serve::Simulator cold_sim(config, pool);
  const auto cold_t0 = std::chrono::steady_clock::now();
  const serve::ServeResult served = cold_sim.run(requests);
  const double serve_cold_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - cold_t0).count();
  serve::Simulator warm_sim(config, pool);  // fresh instance, shared (warm) RunCache
  const double serve_warm_s = best_wall_seconds(3, [&] { warm_sim.run(requests); });

  // The replay claim prices the dispatched job stream directly so it stays
  // engine-dominated (the full serve run above also pays the event loop,
  // which memoization cannot touch -- reported, not claimed).
  const double price_cold_s =
      best_wall_seconds(3, [&] { price_jobs_seconds(config, pool_nocache, served.jobs); });
  const double price_warm_s =
      best_wall_seconds(3, [&] { price_jobs_seconds(config, pool, served.jobs); });
  const double memo_speedup = price_warm_s > 0.0 ? price_cold_s / price_warm_s : 1.0;

  const sim::RunCache* cache = pool.run_cache();
  Table memo("engine-run memoization (serve workload, " +
             Table::integer(static_cast<long long>(served.jobs.size())) + " jobs)");
  memo.set_header({"experiment", "cold [ms]", "warm [ms]", "speedup"});
  memo.add_row({"price job stream (claimed)", Table::num(price_cold_s * 1e3, 2),
                Table::num(price_warm_s * 1e3, 2), Table::num(memo_speedup, 1) + "x"});
  memo.add_row({"full serve replay", Table::num(serve_cold_s * 1e3, 2),
                Table::num(serve_warm_s * 1e3, 2),
                Table::num(serve_warm_s > 0.0 ? serve_cold_s / serve_warm_s : 1.0, 1) + "x"});
  memo.add_row({"run-cache misses (cold) / hits (warm)",
                Table::integer(static_cast<long long>(cache != nullptr ? cache->misses() : 0)),
                Table::integer(static_cast<long long>(cache != nullptr ? cache->hits() : 0)),
                "-"});
  reporter.emit(memo, "sim_throughput_memo");

  const bool ok = reporter.check_claims({
      {"48-UE replay speedup at " + std::to_string(hw) + " host threads >= " +
           Table::num(target, 2) + "x (bool)",
       1.0, speedup >= target ? 1.0 : 0.0, 0.0},
      {"warm-memo job replay >= 5x faster than cold (bool)", 1.0,
       memo_speedup >= 5.0 ? 1.0 : 0.0, 0.0},
  });
  return reporter.finish(ok);
}
