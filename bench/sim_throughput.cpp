// Simulator-performance bench (MODEL.md section 7): how fast does the host
// churn through simulated nonzeros, and what do the engine fast paths buy?
//
//   1. Host-parallel rank replay: one 48-UE run timed at SCC_SIM_THREADS=1
//      versus the machine's hardware concurrency. The speedup claim
//      self-calibrates to the host (>= 2x with 4+ hardware threads, >= 1.2x
//      with 2-3, and merely "no worse than ~0.75x" on a single-CPU runner
//      where the parallel path degenerates to the serial loop).
//   2. Engine-run memoization: a serving workload priced cold (RunCache
//      disabled) versus warm (fresh ServiceModel on a pool whose shared
//      RunCache a previous serve run populated). Warm replay must be >= 5x
//      faster -- hits skip the trace replay entirely, so this holds at any
//      thread count and any SCC_TESTBED_SCALE.
//   3. Contended hit path: `hw` host threads hammering lookups against the
//      sharded lock-free RunCache versus a single-mutex LRU (the
//      pre-sharding design, rebuilt here as the baseline). Self-calibrated
//      like (1): >= 3x with 4+ hardware threads, >= 1.5x with 2-3, and "no
//      worse than ~0.8x" single-threaded, where lock-free merely avoids an
//      uncontended mutex.
//   4. Persisted replay: the warm pool's cache is snapshotted to disk, a
//      fresh pool loads it (the cross-process path), and re-pricing the
//      whole job stream must simulate nothing -- zero cache misses.
//
// The experiments replay identical simulations; the equivalence tests
// (tests/test_sim_parallel.cpp, test_sim_runcache.cpp) prove the numbers
// are bit-identical, this bench only prices the wall clock.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "gen/generators.hpp"
#include "serve/loadgen.hpp"
#include "serve/simulator.hpp"
#include "sim/run_cache.hpp"

namespace {

using namespace scc;

/// The pre-sharding RunCache design, rebuilt as the contended-hit baseline:
/// one global mutex around an LRU list, a hit splices to the front and
/// returns a deep copy under the lock.
class MutexLruCache {
 public:
  explicit MutexLruCache(std::size_t capacity) : capacity_(capacity) {}

  std::optional<sim::RunResult> lookup(const sim::RunKey& key) {
    std::scoped_lock lock(mutex_);
    const auto it = index_.find({key.matrix, key.spec});
    if (it == index_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  void insert(const sim::RunKey& key, const sim::RunResult& result) {
    std::scoped_lock lock(mutex_);
    const std::pair<std::uint64_t, std::uint64_t> k{key.matrix, key.spec};
    if (const auto it = index_.find(k); it != index_.end()) {
      it->second->second = result;
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() >= capacity_) {
      index_.erase({order_.back().first.matrix, order_.back().first.spec});
      order_.pop_back();
    }
    order_.emplace_front(key, result);
    index_[k] = order_.begin();
  }

 private:
  using List = std::list<std::pair<sim::RunKey, sim::RunResult>>;
  std::size_t capacity_;
  std::mutex mutex_;
  List order_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, List::iterator> index_;
};

/// Wall seconds for `threads` host threads to each perform `lookups` hits
/// round-robin over `keys` against `cache` (RunCache or MutexLruCache).
template <typename Cache>
double hammer_seconds(Cache& cache, const std::vector<sim::RunKey>& keys, unsigned threads,
                      int lookups, double& sink) {
  std::vector<std::thread> workers;
  std::vector<double> sinks(threads, 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&cache, &keys, lookups, t, &sinks] {
      double local = 0.0;
      for (int i = 0; i < lookups; ++i) {
        const auto hit = cache.lookup(keys[(static_cast<std::size_t>(i) + t) % keys.size()]);
        if (hit.has_value()) local += hit->seconds;
      }
      sinks[t] = local;
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const double s : sinks) sink += s;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Best-of-`reps` wall seconds of `fn` (min filters scheduler noise).
double best_wall_seconds(int reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (rep == 0 || wall < best) best = wall;
  }
  return best;
}

/// Price every job of `jobs` through a fresh ServiceModel on `pool` (fresh so
/// the per-model JobTiming map starts empty and only the engine-level
/// RunCache distinguishes cold from warm).
double price_jobs_seconds(const serve::ServeConfig& config, serve::MatrixPool& pool,
                          const std::vector<serve::JobRecord>& jobs) {
  serve::ServiceModel model(config.engine, pool);
  const auto t0 = std::chrono::steady_clock::now();
  for (const serve::JobRecord& job : jobs) {
    model.timing(job.matrix_id, job.cores);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  benchutil::Reporter reporter("sim_throughput");
  reporter.banner("Simulator performance",
                  "host-parallel rank replay + engine-run memoization");

  // ---- 1. rank-replay throughput: threads = 1 vs hardware concurrency ----
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const sparse::CsrMatrix matrix = gen::random_uniform(60000, 12, 0x51f7);
  const sim::Engine engine;
  sim::RunSpec spec;
  spec.ue_count = 48;

  engine.run(matrix, spec);  // warm-up (testbed pages, allocator)
  common::set_sim_threads(1);
  const double serial_s = best_wall_seconds(3, [&] { engine.run(matrix, spec); });
  common::set_sim_threads(static_cast<int>(hw));
  const double parallel_s = best_wall_seconds(3, [&] { engine.run(matrix, spec); });
  common::set_sim_threads(0);  // back to the environment default

  const double nnz = static_cast<double>(matrix.nnz());
  const double speedup = serial_s > 0.0 ? serial_s / parallel_s : 1.0;
  Table threads("48-UE run, 60000x12 random matrix (simulated numbers identical)");
  threads.set_header({"host threads", "wall [ms]", "simulated Mnnz/s", "speedup"});
  threads.add_row({"1", Table::num(serial_s * 1e3, 2),
                   Table::num(nnz / serial_s / 1e6, 1), "1.00x"});
  threads.add_row({Table::integer(static_cast<long long>(hw)),
                   Table::num(parallel_s * 1e3, 2), Table::num(nnz / parallel_s / 1e6, 1),
                   Table::num(speedup, 2) + "x"});
  reporter.emit(threads, "sim_throughput_threads");

  // Self-calibrating target: the CI runner may expose a single CPU, where the
  // "parallel" path is the serial loop and only overhead could be measured.
  const double target = hw >= 4 ? 2.0 : hw >= 2 ? 1.2 : 0.75;

  // ---- 2. memoized serve replay: cold vs warm ----
  const serve::WorkloadSpec workload;  // defaults: 200 requests, mix 26/27/28/30
  const auto requests = serve::generate_workload(workload);
  const serve::ServeConfig config;

  serve::MatrixPool pool(testbed::suite_scale_from_env());
  serve::MatrixPool pool_nocache = serve::MatrixPool::without_run_cache(testbed::suite_scale_from_env());
  for (const int id : workload.matrix_mix) {
    pool.entry(id);  // prefetch so matrix building never pollutes the timings
    pool_nocache.entry(id);
  }

  serve::Simulator cold_sim(config, pool);
  const auto cold_t0 = std::chrono::steady_clock::now();
  const serve::ServeResult served = cold_sim.run(requests);
  const double serve_cold_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - cold_t0).count();
  serve::Simulator warm_sim(config, pool);  // fresh instance, shared (warm) RunCache
  const double serve_warm_s = best_wall_seconds(3, [&] { warm_sim.run(requests); });

  // The replay claim prices the dispatched job stream directly so it stays
  // engine-dominated (the full serve run above also pays the event loop,
  // which memoization cannot touch -- reported, not claimed).
  const double price_cold_s =
      best_wall_seconds(3, [&] { price_jobs_seconds(config, pool_nocache, served.jobs); });
  const double price_warm_s =
      best_wall_seconds(3, [&] { price_jobs_seconds(config, pool, served.jobs); });
  const double memo_speedup = price_warm_s > 0.0 ? price_cold_s / price_warm_s : 1.0;

  const sim::RunCache* cache = pool.run_cache().get();
  Table memo("engine-run memoization (serve workload, " +
             Table::integer(static_cast<long long>(served.jobs.size())) + " jobs)");
  memo.set_header({"experiment", "cold [ms]", "warm [ms]", "speedup"});
  memo.add_row({"price job stream (claimed)", Table::num(price_cold_s * 1e3, 2),
                Table::num(price_warm_s * 1e3, 2), Table::num(memo_speedup, 1) + "x"});
  memo.add_row({"full serve replay", Table::num(serve_cold_s * 1e3, 2),
                Table::num(serve_warm_s * 1e3, 2),
                Table::num(serve_warm_s > 0.0 ? serve_cold_s / serve_warm_s : 1.0, 1) + "x"});
  memo.add_row({"run-cache misses (cold) / hits (warm)",
                Table::integer(static_cast<long long>(cache != nullptr ? cache->misses() : 0)),
                Table::integer(static_cast<long long>(cache != nullptr ? cache->hits() : 0)),
                "-"});
  reporter.emit(memo, "sim_throughput_memo");

  // ---- 3. contended hit path: sharded lock-free vs single-mutex LRU ----
  // Small distinct keys, one realistic RunResult payload (the deep copy a
  // hit pays is the same on both sides), `hw` threads hammering lookups.
  const sparse::CsrMatrix small = gen::random_uniform(4000, 8, 0x7a11);
  sim::RunSpec small_spec;
  small_spec.ue_count = 8;
  const sim::RunResult payload = engine.run(small, small_spec);

  constexpr std::size_t kHammerKeys = 64;
  constexpr int kHammerLookups = 20000;
  std::vector<sim::RunKey> keys;
  for (std::size_t i = 0; i < kHammerKeys; ++i) {
    keys.push_back(sim::RunKey{0x9e3779b97f4a7c15ULL * (i + 1), i + 1});
  }
  sim::RunCacheConfig sharded_config;
  sharded_config.capacity = kHammerKeys;
  sharded_config.shards = 16;
  sim::RunCache sharded(sharded_config);
  MutexLruCache mutex_lru(kHammerKeys);
  for (const sim::RunKey& key : keys) {
    sharded.insert(key, payload);
    mutex_lru.insert(key, payload);
  }

  double sink = 0.0;
  const double mutex_s = best_wall_seconds(
      3, [&] { hammer_seconds(mutex_lru, keys, hw, kHammerLookups, sink); });
  const double sharded_s = best_wall_seconds(
      3, [&] { hammer_seconds(sharded, keys, hw, kHammerLookups, sink); });
  const double contended_speedup = sharded_s > 0.0 ? mutex_s / sharded_s : 1.0;
  // Self-calibrating like the rank-replay target: on a single-CPU runner
  // there is no contention to shed, so lock-free only has to break even.
  const double contended_target = hw >= 4 ? 3.0 : hw >= 2 ? 1.5 : 0.8;

  Table contended("contended hit path (" + Table::integer(static_cast<long long>(hw)) +
                  " threads x " + Table::integer(kHammerLookups) + " lookups, " +
                  Table::integer(static_cast<long long>(kHammerKeys)) + " keys)");
  contended.set_header({"cache", "wall [ms]", "lookups/s", "speedup"});
  const double total_lookups = static_cast<double>(hw) * kHammerLookups;
  contended.add_row({"single-mutex LRU", Table::num(mutex_s * 1e3, 2),
                     Table::num(total_lookups / mutex_s / 1e3, 1) + "k", "1.00x"});
  contended.add_row({"sharded lock-free (16 shards)", Table::num(sharded_s * 1e3, 2),
                     Table::num(total_lookups / sharded_s / 1e3, 1) + "k",
                     Table::num(contended_speedup, 2) + "x"});
  reporter.emit(contended, "sim_throughput_contended");

  // ---- 4. persisted replay: snapshot -> fresh pool -> zero re-simulation ----
  const std::string snapshot_path = "BENCH_sim_throughput.runcache";
  const bool saved = cache != nullptr && cache->save_snapshot(snapshot_path);
  double price_persisted_s = 0.0;
  std::uint64_t persisted_misses = 1;
  {
    sim::RunCacheConfig persisted_config;
    persisted_config.persist_path = snapshot_path;
    serve::MatrixPool persisted_pool(testbed::suite_scale_from_env(), persisted_config);
    for (const int id : workload.matrix_mix) persisted_pool.entry(id);
    price_persisted_s =
        best_wall_seconds(3, [&] { price_jobs_seconds(config, persisted_pool, served.jobs); });
    if (persisted_pool.run_cache() != nullptr) {
      persisted_misses = persisted_pool.run_cache()->misses();
    }
  }  // pool teardown re-snapshots; remove the file afterwards
  std::remove(snapshot_path.c_str());

  Table persisted("persisted replay (snapshot round trip, fresh pool)");
  persisted.set_header({"experiment", "wall [ms]", "misses"});
  persisted.add_row({"price job stream from snapshot", Table::num(price_persisted_s * 1e3, 2),
                     Table::integer(static_cast<long long>(persisted_misses))});
  reporter.emit(persisted, "sim_throughput_persisted");

  const bool ok = reporter.check_claims({
      {"48-UE replay speedup at " + std::to_string(hw) + " host threads >= " +
           Table::num(target, 2) + "x (bool)",
       1.0, speedup >= target ? 1.0 : 0.0, 0.0},
      {"warm-memo job replay >= 5x faster than cold (bool)", 1.0,
       memo_speedup >= 5.0 ? 1.0 : 0.0, 0.0},
      {"sharded contended hits >= " + Table::num(contended_target, 2) + "x single-mutex at " +
           std::to_string(hw) + " threads (bool)",
       1.0, contended_speedup >= contended_target ? 1.0 : 0.0, 0.0},
      {"persisted snapshot replays the job stream with zero misses (bool)", 1.0,
       saved && persisted_misses == 0 ? 1.0 : 0.0, 0.0},
  });
  return reporter.finish(ok);
}
