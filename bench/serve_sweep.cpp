// Serving-policy sweep: compares the three chip-partitioning policies of
// src/serve across offered loads, plus the batching ablation.
//
// The offered loads self-calibrate: the sweep first measures the FIFO
// whole-chip policy's sustained (backlog-drain) throughput on this testbed
// scale, then offers multiples of it, so the claims hold at any
// SCC_TESTBED_SCALE. Claims are encoded as booleans (measured 1/0 against
// expected 1 with zero tolerance) because they are ordering statements --
// "matrix-aware sustains strictly more than whole-chip FIFO at saturation"
// and "batching lowers p95 at moderate load" -- not magnitude reproductions.
//
// Env knobs (besides the shared bench ones): SCC_SERVE_REQUESTS overrides
// the per-point request count (CI smoke uses a small value).

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/loadgen.hpp"
#include "serve/simulator.hpp"

namespace {

using namespace scc;

int requests_from_env(int fallback) {
  const char* value = std::getenv("SCC_SERVE_REQUESTS");
  if (value == nullptr || *value == '\0') return fallback;
  return std::max(1, std::atoi(value));
}

serve::WorkloadSpec base_workload(int request_count, double offered_rps) {
  serve::WorkloadSpec spec;
  spec.seed = 0x5e12e;
  spec.offered_rps = offered_rps;
  spec.request_count = request_count;
  return spec;
}

serve::ServeConfig config_for(serve::SchedulingPolicy policy, bool batching) {
  serve::ServeConfig config;
  config.policy = policy;
  config.batching = batching;
  return config;
}

/// Sustained throughput: the whole stream arrives (virtually) at once into a
/// queue deep enough to hold it, and the policy drains the backlog -- the
/// classic capacity measurement, independent of arrival jitter.
serve::ServeResult drain_backlog(serve::MatrixPool& pool, serve::SchedulingPolicy policy,
                                 bool batching, int request_count) {
  serve::WorkloadSpec spec = base_workload(request_count, 1e6);
  // Capacity, not shedding: with pop-time deadline expiry the default SLOs
  // would drop most of an instantaneous backlog before it reaches a chip.
  spec.slo_interactive_seconds = 1e6;
  spec.slo_batch_seconds = 1e6;
  serve::ServeConfig config = config_for(policy, batching);
  config.admission.max_queue_depth = request_count + 1;
  config.admission.interactive_reserve = 0;
  serve::Simulator simulator(config, pool);
  return simulator.run(serve::generate_workload(spec));
}

}  // namespace

int main() {
  benchutil::Reporter reporter("serve_sweep");
  reporter.banner("serving extension -- policy sweep",
                  "multi-tenant SpMV serving: space partitioning vs whole-chip FIFO");

  const int request_count = requests_from_env(240);
  serve::MatrixPool pool(testbed::suite_scale_from_env());
  const std::vector<serve::SchedulingPolicy> policies = {
      serve::SchedulingPolicy::kFifoWholeChip, serve::SchedulingPolicy::kFixedQuadrants,
      serve::SchedulingPolicy::kMatrixAware};

  // --- Saturation: drain an instantaneous backlog under each policy. ---
  Table saturation("sustained throughput (backlog drain, batching on)");
  saturation.set_header({"policy", "req/s", "makespan [s]", "jobs", "p95 [ms]"});
  double fifo_capacity = 0.0;
  double matrix_aware_capacity = 0.0;
  for (const auto policy : policies) {
    const auto result = drain_backlog(pool, policy, true, request_count);
    if (policy == serve::SchedulingPolicy::kFifoWholeChip) {
      fifo_capacity = result.throughput_rps;
    }
    if (policy == serve::SchedulingPolicy::kMatrixAware) {
      matrix_aware_capacity = result.throughput_rps;
    }
    saturation.add_row({serve::to_string(policy), Table::num(result.throughput_rps, 1),
                        Table::num(result.makespan_seconds, 4),
                        Table::integer(static_cast<long long>(result.jobs.size())),
                        Table::num(result.latency_total.p95 * 1e3, 2)});
  }
  reporter.emit(saturation, "serve_saturation");

  // --- Load sweep: offered load as multiples of the FIFO capacity. ---
  Table sweep("policy comparison across offered loads (default admission)");
  sweep.set_header({"load/fifo-cap", "policy", "offered req/s", "throughput", "p95 [ms]",
                    "rejected", "slo miss"});
  for (const double factor : {0.3, 0.7, 1.2, 3.0}) {
    for (const auto policy : policies) {
      const serve::WorkloadSpec spec =
          base_workload(request_count, factor * fifo_capacity);
      serve::Simulator simulator(config_for(policy, true), pool);
      const auto result = simulator.run(serve::generate_workload(spec));
      sweep.add_row({Table::num(factor, 1), serve::to_string(policy),
                     Table::num(spec.offered_rps, 1), Table::num(result.throughput_rps, 1),
                     Table::num(result.latency_total.p95 * 1e3, 2),
                     Table::integer(result.rejected), Table::integer(result.slo_violations)});
    }
  }
  reporter.emit(sweep, "serve_load_sweep");

  // --- Batching ablation at moderate load (matrix-aware policy). ---
  // "Moderate" calibrates against the *unbatched* capacity of the same
  // policy: offering 1.2x of it guarantees a queue forms at every testbed
  // scale, so batching has same-matrix neighbours to merge and its amortized
  // loads drain the backlog faster than one-request jobs can.
  const double unbatched_capacity =
      drain_backlog(pool, serve::SchedulingPolicy::kMatrixAware, false, request_count)
          .throughput_rps;
  const double moderate_rps = 1.2 * unbatched_capacity;
  Table batching("batching ablation, matrix-aware at 1.2x unbatched capacity");
  batching.set_header({"batching", "throughput", "p50 [ms]", "p95 [ms]", "jobs"});
  double p95_batched = 0.0;
  double p95_unbatched = 0.0;
  for (const bool on : {false, true}) {
    serve::WorkloadSpec spec = base_workload(request_count, moderate_rps);
    spec.slo_interactive_seconds = 1e6;  // measure queueing latency, not shedding
    spec.slo_batch_seconds = 1e6;
    serve::ServeConfig config = config_for(serve::SchedulingPolicy::kMatrixAware, on);
    config.admission.max_queue_depth = request_count + 1;  // isolate latency, not shedding
    config.admission.interactive_reserve = 0;
    serve::Simulator simulator(config, pool);
    const auto result = simulator.run(serve::generate_workload(spec));
    (on ? p95_batched : p95_unbatched) = result.latency_total.p95;
    batching.add_row({on ? "on" : "off", Table::num(result.throughput_rps, 1),
                      Table::num(result.latency_total.p50 * 1e3, 2),
                      Table::num(result.latency_total.p95 * 1e3, 2),
                      Table::integer(static_cast<long long>(result.jobs.size()))});
  }
  reporter.emit(batching, "serve_batching");

  const bool ok = reporter.check_claims({
      {"matrix-aware sustains more than whole-chip FIFO at saturation (bool)",
       1.0, matrix_aware_capacity > fifo_capacity ? 1.0 : 0.0, 0.0},
      {"batching lowers p95 latency at moderate load (bool)", 1.0,
       p95_batched < p95_unbatched ? 1.0 : 0.0, 0.0},
  });
  return reporter.finish(ok);
}
