// Resilience sweep: fault rate vs. achieved performance and recovery cost.
//
// Part 1 drives the *emulated* RCCE SpMV under increasing stochastic fault
// rates and under 0..3 injected UE deaths, checking that every run still
// produces the exact reference product and reporting the deterministic fault
// log counts (retries, drops, timeouts, repartitions). Wall-clock numbers
// from the emulation are deliberately not printed -- with zero faults the
// output of this binary is byte-identical run to run.
//
// Part 2 asks the Section-V timing model what the same deaths cost on the
// real machine: survivors absorb the dead ranks' rows, pay one watchdog
// detection window plus the re-shipping of the repartitioned CSR blocks, and
// the effective GFLOPS drops accordingly.
#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault.hpp"
#include "gen/generators.hpp"
#include "rcce/rcce.hpp"
#include "sparse/csr.hpp"
#include "spmv/rcce_spmv.hpp"

namespace {

using namespace scc;

constexpr int kUes = 8;
constexpr double kWatchdogSeconds = 5.0;

struct EmulatedRun {
  bool correct = false;
  std::size_t retries = 0;
  std::size_t drops = 0;
  std::size_t timeouts = 0;
  std::size_t repartitions = 0;
  std::size_t dead = 0;
};

EmulatedRun run_emulated(const sparse::CsrMatrix& m, const std::vector<real_t>& x,
                         const std::vector<real_t>& reference, const fault::Plan& plan) {
  rcce::RuntimeOptions options;
  options.watchdog_timeout_seconds = kWatchdogSeconds;
  options.injector = std::make_shared<fault::Injector>(plan);
  const auto run = spmv::rcce_spmv(m, x, kUes, options);

  EmulatedRun r;
  double max_error = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    max_error = std::max(max_error, std::abs(run.y[i] - reference[i]));
  }
  r.correct = max_error <= 1e-9;
  const auto& log = run.report.fault_log;
  r.retries = fault::count(log, fault::EventType::kRetry);
  r.drops = fault::count(log, fault::EventType::kTransferDrop);
  r.timeouts = fault::count(log, fault::EventType::kTimeout);
  r.repartitions = fault::count(log, fault::EventType::kRepartition);
  r.dead = run.report.dead_ues.size();
  return r;
}

std::string count_cell(std::size_t n) { return Table::integer(static_cast<long long>(n)); }

}  // namespace

int main() {
  using namespace scc;
  benchutil::Reporter rep("fault_sweep");
  rep.banner("Fault sweep", "fault rate vs. GFLOPS and recovery overhead");

  const auto m = gen::banded(4000, 24, 0.4, 7);
  std::vector<real_t> x(static_cast<std::size_t>(m.cols()));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::cos(static_cast<double>(i) * 0.25);
  const auto reference = sparse::dense_reference_spmv(m, x);

  // --- Part 1a: stochastic transient/drop rates on the emulated runtime. ---
  {
    Table t("emulated RCCE SpMV, " + std::to_string(kUes) + " UEs, stochastic message faults");
    t.set_header({"transient rate", "drop rate", "retries", "drops", "timeouts", "correct"});
    const double rates[] = {0.0, 0.02, 0.05, 0.10, 0.20};
    for (const double rate : rates) {
      fault::Plan plan;
      plan.seed = 0x5cc;
      plan.transient_rate = rate;
      plan.drop_rate = rate / 4.0;
      const auto r = run_emulated(m, x, reference, plan);
      t.add_row({Table::num(rate, 2), Table::num(rate / 4.0, 3), count_cell(r.retries),
                 count_cell(r.drops), count_cell(r.timeouts), r.correct ? "yes" : "NO"});
    }
    rep.emit(t, "fault_sweep_rates");
  }

  // --- Part 1b: permanent UE deaths and the degraded-mode recovery. ---
  {
    Table t("emulated RCCE SpMV, " + std::to_string(kUes) + " UEs, injected UE deaths");
    t.set_header({"killed UEs", "dead observed", "repartitions", "correct"});
    for (int kills = 0; kills <= 3; ++kills) {
      fault::Plan plan;
      plan.seed = 0x5cc;
      for (int k = 0; k < kills; ++k) {
        plan.kills.push_back({2 * k + 1, static_cast<std::uint64_t>(3 + k)});
      }
      const auto r = run_emulated(m, x, reference, plan);
      t.add_row({Table::integer(kills), count_cell(r.dead), count_cell(r.repartitions),
                 r.correct ? "yes" : "NO"});
    }
    rep.emit(t, "fault_sweep_kills");
  }

  // --- Part 2: what the deaths cost on the Section-V machine model. ---
  {
    const sim::Engine engine;
    const auto healthy = engine.run(m, kUes, chip::MappingPolicy::kDistanceReduction);
    Table t("timing model, " + std::to_string(kUes) + " UEs, dead ranks repartitioned");
    t.set_header(
        {"dead UEs", "GFLOPS", "vs healthy", "recovery ms", "reshipped KB"});
    t.add_row({"0", Table::num(healthy.gflops, 4), "100.0%", Table::num(0.0, 3),
               Table::num(0.0, 1)});
    for (int dead = 1; dead <= 4; ++dead) {
      std::vector<int> dead_ranks;
      for (int k = 0; k < dead; ++k) dead_ranks.push_back(2 * k + 1);
      const auto d = engine.run_degraded(m, kUes, chip::MappingPolicy::kDistanceReduction,
                                         dead_ranks);
      t.add_row({Table::integer(dead), Table::num(d.gflops, 4),
                 Table::num(100.0 * d.gflops / healthy.gflops, 1) + "%",
                 Table::num(d.recovery_seconds * 1e3, 3),
                 Table::num(static_cast<double>(d.reshipped_bytes) / 1024.0, 1)});
    }
    rep.emit(t, "fault_sweep_model");
  }

  return rep.finish(true);
}
