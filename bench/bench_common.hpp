// Shared plumbing for the figure-reproduction benches: suite loading with
// the env-controlled scale, mean-over-suite simulation sweeps, and uniform
// headers so every binary's output reads the same way.
#pragma once

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/engine.hpp"
#include "testbed/cache.hpp"
#include "testbed/suite.hpp"

namespace scc::benchutil {

/// Load (or generate) the Table-I suite, reporting what was done. Honour
/// SCC_TESTBED_SCALE for quick smoke runs.
inline std::vector<testbed::SuiteEntry> load_suite() {
  const double scale = testbed::suite_scale_from_env();
  std::cerr << "[suite] building Table-I testbed at scale " << scale
            << " (cache: " << testbed::cache_directory() << ") ..." << std::flush;
  const auto t0 = std::chrono::steady_clock::now();
  auto suite = testbed::build_suite(scale);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  nnz_t total = 0;
  for (const auto& e : suite) total += e.matrix.nnz();
  std::cerr << " done in " << Table::num(secs, 1) << "s (" << total << " nonzeros total)\n";
  return suite;
}

/// Mean whole-run GFLOPS over the suite for one configuration.
inline double suite_mean_gflops(const sim::Engine& engine,
                                const std::vector<testbed::SuiteEntry>& suite, int ue_count,
                                chip::MappingPolicy policy,
                                sim::SpmvVariant variant = sim::SpmvVariant::kCsr) {
  std::vector<double> gflops;
  gflops.reserve(suite.size());
  for (const auto& e : suite) {
    gflops.push_back(engine.run(e.matrix, ue_count, policy, variant).gflops);
  }
  return mean(gflops);
}

/// Mean single-core GFLOPS at a forced hop distance (Fig 3).
inline double suite_mean_gflops_at_hops(const sim::Engine& engine,
                                        const std::vector<testbed::SuiteEntry>& suite,
                                        int hops) {
  std::vector<double> gflops;
  gflops.reserve(suite.size());
  for (const auto& e : suite) {
    gflops.push_back(engine.run_single_core_at_hops(e.matrix, hops).gflops);
  }
  return mean(gflops);
}

/// Print a table and, when $SCC_BENCH_CSV_DIR is set, also write it as
/// <dir>/<stem>.csv -- machine-readable artifacts for plotting pipelines.
inline void emit(const Table& table, const std::string& stem) {
  table.print(std::cout);
  if (const char* dir = std::getenv("SCC_BENCH_CSV_DIR"); dir != nullptr && *dir != '\0') {
    std::filesystem::create_directories(dir);
    const std::filesystem::path path = std::filesystem::path(dir) / (stem + ".csv");
    std::ofstream out(path);
    if (out.is_open()) {
      table.print_csv(out);
      std::cerr << "[csv] wrote " << path.string() << '\n';
    }
  }
}

/// Banner every figure binary prints first.
inline void banner(const std::string& figure, const std::string& what) {
  std::cout << "==========================================================\n"
            << figure << " -- " << what << "\n"
            << "(simulated SCC; see DESIGN.md for the substitution notes)\n"
            << "==========================================================\n";
}

/// The core counts the paper's per-core-count figures sweep.
inline const std::vector<int>& core_count_sweep() {
  static const std::vector<int> counts = {1, 2, 4, 8, 16, 24, 32, 48};
  return counts;
}

}  // namespace scc::benchutil
