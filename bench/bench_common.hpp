// Shared plumbing for the figure-reproduction benches: suite loading with
// the env-controlled scale, mean-over-suite simulation sweeps, uniform
// headers, and the Reporter that turns every binary's tables + claims into
// a BENCH_<name>.json artifact (schema v1, kind "bench").
//
// Environment knobs: SCC_TESTBED_SCALE (suite size), SCC_QUIET=1 (suppress
// the stderr suite-building / artifact logs), SCC_BENCH_CSV_DIR and
// SCC_BENCH_JSON_DIR (artifact destinations; JSON defaults to the cwd).
#pragma once

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/report.hpp"
#include "sim/engine.hpp"
#include "testbed/cache.hpp"
#include "testbed/suite.hpp"

namespace scc::benchutil {

/// True when SCC_QUIET=1 asks the benches to keep stderr clean (CI logs).
inline bool quiet() {
  const char* value = std::getenv("SCC_QUIET");
  return value != nullptr && std::string(value) == "1";
}

/// Load (or generate) the Table-I suite, reporting what was done. Honour
/// SCC_TESTBED_SCALE for quick smoke runs and SCC_QUIET=1 for silence.
inline std::vector<testbed::SuiteEntry> load_suite() {
  const double scale = testbed::suite_scale_from_env();
  if (!quiet()) {
    std::cerr << "[suite] building Table-I testbed at scale " << scale
              << " (cache: " << testbed::cache_directory() << ") ..." << std::flush;
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto suite = testbed::build_suite(scale);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  nnz_t total = 0;
  for (const auto& e : suite) total += e.matrix.nnz();
  if (!quiet()) {
    std::cerr << " done in " << Table::num(secs, 1) << "s (" << total << " nonzeros total)\n";
  }
  return suite;
}

/// Mean whole-run GFLOPS over the suite for one configuration.
inline double suite_mean_gflops(const sim::Engine& engine,
                                const std::vector<testbed::SuiteEntry>& suite, int ue_count,
                                chip::MappingPolicy policy,
                                sim::SpmvVariant variant = sim::SpmvVariant::kCsr) {
  std::vector<double> gflops;
  gflops.reserve(suite.size());
  for (const auto& e : suite) {
    gflops.push_back(engine.run(e.matrix, ue_count, policy, variant).gflops);
  }
  return mean(gflops);
}

/// Mean single-core GFLOPS at a forced hop distance (Fig 3).
inline double suite_mean_gflops_at_hops(const sim::Engine& engine,
                                        const std::vector<testbed::SuiteEntry>& suite,
                                        int hops) {
  std::vector<double> gflops;
  gflops.reserve(suite.size());
  for (const auto& e : suite) {
    gflops.push_back(engine.run_single_core_at_hops(e.matrix, hops).gflops);
  }
  return mean(gflops);
}

/// Print a table and, when $SCC_BENCH_CSV_DIR is set, also write it as
/// <dir>/<stem>.csv -- machine-readable artifacts for plotting pipelines.
inline void emit(const Table& table, const std::string& stem) {
  table.print(std::cout);
  if (const char* dir = std::getenv("SCC_BENCH_CSV_DIR"); dir != nullptr && *dir != '\0') {
    std::filesystem::create_directories(dir);
    const std::filesystem::path path = std::filesystem::path(dir) / (stem + ".csv");
    std::ofstream out(path);
    if (out.is_open()) {
      table.print_csv(out);
      if (!quiet()) std::cerr << "[csv] wrote " << path.string() << '\n';
    }
  }
}

/// Banner every figure binary prints first.
inline void banner(const std::string& figure, const std::string& what) {
  std::cout << "==========================================================\n"
            << figure << " -- " << what << "\n"
            << "(simulated SCC; see DESIGN.md for the substitution notes)\n"
            << "==========================================================\n";
}

/// Per-binary report builder: wraps banner/emit/check_claims so the human
/// output stays exactly as before while every table and claim also lands in
/// BENCH_<name>.json (schema v1, kind "bench") on finish(). Destination:
/// $SCC_BENCH_JSON_DIR when set, else the working directory.
class Reporter {
 public:
  explicit Reporter(std::string name) : name_(std::move(name)) {}

  void banner(const std::string& figure, const std::string& what) {
    benchutil::banner(figure, what);
    figure_ = figure;
    what_ = what;
  }

  void emit(const Table& table, const std::string& stem) {
    benchutil::emit(table, stem);
    tables_.push_back(obs::table_json(table, stem));
  }

  /// Evaluate + pretty-print the reproduction claims (same output as the
  /// free check_claims) and keep the filled-in results for the artifact.
  bool check_claims(std::vector<ClaimCheck> claims) {
    const bool ok = evaluate_claims(claims);
    scc::check_claims(std::cout, claims);
    for (const ClaimCheck& claim : claims) claims_.push_back(obs::claim_json(claim));
    return ok;
  }

  /// Write BENCH_<name>.json and map `ok` to the process exit code.
  int finish(bool ok) {
    obs::Json report = obs::report_skeleton(obs::kKindBench);
    report.set("name", name_);
    report.set("figure", figure_);
    report.set("description", what_);
    report.set("testbed_scale", testbed::suite_scale_from_env());
    report.set("tables", std::move(tables_));
    report.set("claims", std::move(claims_));
    report.set("ok", ok);

    std::filesystem::path dir = ".";
    if (const char* env = std::getenv("SCC_BENCH_JSON_DIR"); env != nullptr && *env != '\0') {
      dir = env;
      std::filesystem::create_directories(dir);
    }
    const std::filesystem::path path = dir / ("BENCH_" + name_ + ".json");
    std::ofstream out(path);
    if (out.is_open()) {
      out << report.dump(2) << '\n';
      if (!quiet()) std::cerr << "[json] wrote " << path.string() << '\n';
    }
    return ok ? 0 : 1;
  }

 private:
  std::string name_;
  std::string figure_;
  std::string what_;
  obs::Json tables_ = obs::Json::array();
  obs::Json claims_ = obs::Json::array();
};

/// The core counts the paper's per-core-count figures sweep.
inline const std::vector<int>& core_count_sweep() {
  static const std::vector<int> counts = {1, 2, 4, 8, 16, 24, 32, 48};
  return counts;
}

}  // namespace scc::benchutil
