#include "cli_commands.hpp"

#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <cmath>
#include <memory>
#include <sstream>

#include "cluster/report.hpp"
#include "cluster/simulator.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fault/fault.hpp"
#include "gen/generators.hpp"
#include "integrity/integrity.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "serve/loadgen.hpp"
#include "serve/report.hpp"
#include "serve/simulator.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"
#include "sparse/io.hpp"
#include "sparse/properties.hpp"
#include "sparse/reorder.hpp"
#include "spmv/rcce_spmv.hpp"
#include "testbed/suite.hpp"
#include "tune/autotuner.hpp"

namespace scc::tools {

namespace {

sparse::CsrMatrix build_family(const CliArgs& args) {
  const std::string family = args.get_or("family", "banded");
  const auto n = static_cast<index_t>(args.get_int_or("n", 10000));
  const std::uint64_t seed = seed_option(args, 1);
  if (family == "banded") {
    return gen::banded(n, static_cast<index_t>(args.get_int_or("half-bandwidth", 20)),
                       args.get_double_or("fill", 0.4), seed);
  }
  if (family == "stencil2d") {
    const auto side = static_cast<index_t>(args.get_int_or("side", 100));
    return gen::stencil_2d(side, side);
  }
  if (family == "stencil3d") {
    const auto side = static_cast<index_t>(args.get_int_or("side", 22));
    return gen::stencil_3d(side, side, side);
  }
  if (family == "fem") {
    return gen::fem_blocks(static_cast<index_t>(args.get_int_or("blocks", 500)),
                           static_cast<index_t>(args.get_int_or("block-size", 8)),
                           static_cast<index_t>(args.get_int_or("couplings", 3)), seed);
  }
  if (family == "random") {
    return gen::random_uniform(n, static_cast<index_t>(args.get_int_or("row-nnz", 10)), seed);
  }
  if (family == "power-law") {
    return gen::power_law(n, static_cast<index_t>(args.get_int_or("avg-row-nnz", 10)),
                          args.get_double_or("alpha", 1.2), seed);
  }
  if (family == "circuit") {
    return gen::circuit(n, args.get_double_or("extra-per-row", 2.0),
                        args.get_double_or("long-range", 0.4), seed);
  }
  SCC_REQUIRE(false, "unknown family '" << family
                                        << "' (banded|stencil2d|stencil3d|fem|random|"
                                           "power-law|circuit)");
  return {};
}

sparse::CsrMatrix load_input(const CliArgs& args) {
  if (const auto path = args.get("matrix")) {
    return sparse::read_matrix_market_file(*path);
  }
  if (args.has("id")) {
    return testbed::build_entry(static_cast<int>(args.get_int_or("id", 1)),
                                testbed::suite_scale_from_env())
        .matrix;
  }
  SCC_REQUIRE(false, "provide --matrix <file.mtx> or --id <1..32>");
  return {};
}

chip::MappingPolicy mapping_from(const CliArgs& args) {
  const std::string name = args.get_or("mapping", "dr");
  if (name == "standard" || name == "std") return chip::MappingPolicy::kStandard;
  if (name == "dr" || name == "distance-reduction") {
    return chip::MappingPolicy::kDistanceReduction;
  }
  if (name == "ca" || name == "contention-aware") return chip::MappingPolicy::kContentionAware;
  SCC_REQUIRE(false, "unknown mapping '" << name << "' (standard|dr|ca)");
  return chip::MappingPolicy::kStandard;
}

chip::FrequencyConfig conf_from(const CliArgs& args) {
  switch (args.get_int_or("conf", 0)) {
    case 0:
      return chip::FrequencyConfig::conf0();
    case 1:
      return chip::FrequencyConfig::conf1();
    case 2:
      return chip::FrequencyConfig::conf2();
    default:
      SCC_REQUIRE(false, "conf must be 0, 1 or 2");
  }
  return chip::FrequencyConfig::conf0();
}

sim::StorageFormat format_from(const CliArgs& args) {
  const std::string name = args.get_or("format", "csr");
  if (name == "csr") return sim::StorageFormat::kCsr;
  if (name == "ell") return sim::StorageFormat::kEll;
  if (name == "bcsr2") return sim::StorageFormat::kBcsr2;
  if (name == "bcsr4") return sim::StorageFormat::kBcsr4;
  if (name == "hyb") return sim::StorageFormat::kHyb;
  SCC_REQUIRE(false, "unknown format '" << name << "' (csr|ell|bcsr2|bcsr4|hyb)");
  return sim::StorageFormat::kCsr;
}

/// --verify=off|detect|correct: the ABFT mode shared by `simulate`, `serve`
/// and `cluster` (integrity::parse_verify_mode rejects anything else with
/// the valid spellings).
integrity::VerifyMode verify_mode_from(const CliArgs& args) {
  return integrity::parse_verify_mode(args.get_or("verify", "off"));
}

/// --sdc-rate / --sdc-sticky / --sdc-seed / --sdc-bits=MIN:MAX into an SDC
/// injection plan (simulate's and serve's corruption model; the cluster
/// command instead injects through the fault plan's sdc_rate / bad_dram).
integrity::SdcPlan sdc_plan_from(const CliArgs& args) {
  integrity::SdcPlan sdc;
  sdc.rate = args.get_double_or("sdc-rate", sdc.rate);
  sdc.sticky_rate = args.get_double_or("sdc-sticky", sdc.sticky_rate);
  SCC_REQUIRE(sdc.rate >= 0.0 && sdc.rate <= 1.0,
              "--sdc-rate must be a probability in [0, 1], got " << sdc.rate);
  SCC_REQUIRE(sdc.sticky_rate >= 0.0 && sdc.sticky_rate <= 1.0,
              "--sdc-sticky must be a probability in [0, 1], got " << sdc.sticky_rate);
  if (args.has("sdc-seed")) sdc.seed = parse_seed(args.get_or("sdc-seed", ""));
  if (const auto bits = args.get("sdc-bits")) {
    const auto sep = bits->find(':');
    std::size_t lo_used = 0;
    std::size_t hi_used = 0;
    int lo = -1;
    int hi = -1;
    if (sep != std::string::npos && sep > 0 && sep + 1 < bits->size()) {
      try {
        lo = std::stoi(bits->substr(0, sep), &lo_used);
        hi = std::stoi(bits->substr(sep + 1), &hi_used);
      } catch (const std::exception&) {
        lo_used = 0;
      }
    }
    SCC_REQUIRE(lo_used == sep && sep + 1 + hi_used == bits->size(),
                "--sdc-bits expects MIN:MAX (e.g. 32:62), got '" << *bits << "'");
    SCC_REQUIRE(lo >= 0 && lo <= hi && hi <= 63,
                "--sdc-bits needs 0 <= MIN <= MAX <= 63, got '" << *bits << "'");
    sdc.min_bit = lo;
    sdc.max_bit = hi;
  }
  return sdc;
}

/// Render a finished report per the shared output flags: pretty JSON into
/// --json=FILE or onto `out`.
void write_json_report(const OutputOptions& output, const obs::Json& report,
                       std::ostream& out) {
  if (!output.json_path.empty()) {
    std::ofstream file(output.json_path);
    SCC_REQUIRE(file.good(), "cannot open --json file '" << output.json_path << "'");
    file << report.dump(2) << '\n';
  } else {
    out << report.dump(2) << '\n';
  }
}

/// Dump the recorder's spans/events as JSON lines into --trace=FILE.
void write_trace(const OutputOptions& output, const obs::Recorder& recorder) {
  if (output.trace_path.empty()) return;
  std::ofstream file(output.trace_path);
  SCC_REQUIRE(file.good(), "cannot open --trace file '" << output.trace_path << "'");
  recorder.write_jsonl(file);
}

std::vector<int> parse_int_list(const std::string& text, const char* flag) {
  std::vector<int> values;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    std::size_t used = 0;
    int value = -1;
    try {
      value = std::stoi(item, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    SCC_REQUIRE(used == item.size(),
                flag << " expects a comma-separated integer list, got '" << item << "'");
    values.push_back(value);
  }
  return values;
}

/// Workload flags shared by `serve` and `cluster`.
serve::WorkloadSpec workload_from(const CliArgs& args) {
  serve::WorkloadSpec workload;
  workload.seed = seed_option(args, workload.seed);
  workload.offered_rps = args.get_double_or("load", workload.offered_rps);
  workload.request_count = static_cast<int>(args.get_int_or("requests", workload.request_count));
  if (const auto mix = args.get("mix")) {
    workload.matrix_mix = parse_int_list(*mix, "--mix");
  }
  workload.interactive_fraction =
      args.get_double_or("interactive-fraction", workload.interactive_fraction);
  workload.slo_interactive_seconds =
      args.get_double_or("slo-interactive", workload.slo_interactive_seconds);
  workload.slo_batch_seconds = args.get_double_or("slo-batch", workload.slo_batch_seconds);
  return workload;
}

/// Autotuning flags shared by `autotune`, `serve` and `cluster`:
/// --tuning-cache-file persists pinned winners across processes;
/// --tuning-cache-capacity bounds the decision map; --fastpath off disables
/// the feature-based class fast path (every matrix explores the full grid).
tune::AutotuneConfig tuning_config_from(const CliArgs& args) {
  tune::AutotuneConfig tuning;
  tuning.cache.persist_path = args.get_or("tuning-cache-file", "");
  tuning.cache.capacity = static_cast<std::size_t>(args.get_int_or(
      "tuning-cache-capacity", static_cast<long long>(tuning.cache.capacity)));
  tuning.feature_fastpath = args.get_bool_or("fastpath", tuning.feature_fastpath);
  return tuning;
}

/// Per-chip serving flags shared by `serve` and `cluster`.
serve::ServeConfig serve_config_from(const CliArgs& args) {
  serve::ServeConfig config;
  config.policy = serve::parse_policy(args.get_or("policy", "matrix-aware"));
  config.admission.max_queue_depth =
      static_cast<int>(args.get_int_or("queue-depth", config.admission.max_queue_depth));
  config.admission.interactive_reserve =
      static_cast<int>(args.get_int_or("reserve", config.admission.interactive_reserve));
  config.batching = args.get_bool_or("batch", config.batching);
  config.batch_max = static_cast<int>(args.get_int_or("batch-max", config.batch_max));
  config.engine.freq = conf_from(args);
  config.autotune = args.get_bool_or("autotune", config.autotune);
  config.tuning = tuning_config_from(args);
  config.verify = verify_mode_from(args);
  config.sdc = sdc_plan_from(args);
  return config;
}

/// Run-cache flags shared by `serve` and `cluster`: --no-run-cache disables
/// memoization outright; --run-cache-capacity / --run-cache-shards size the
/// sharded cache; --run-cache-file persists it across processes.
serve::MatrixPool matrix_pool_from(const CliArgs& args) {
  const double scale = testbed::suite_scale_from_env();
  if (args.get_bool_or("no-run-cache", false)) {
    return serve::MatrixPool::without_run_cache(scale);
  }
  sim::RunCacheConfig cache;
  cache.capacity = static_cast<std::size_t>(
      args.get_int_or("run-cache-capacity", static_cast<long long>(cache.capacity)));
  cache.shards = static_cast<std::size_t>(
      args.get_int_or("run-cache-shards", static_cast<long long>(cache.shards)));
  cache.persist_path = args.get_or("run-cache-file", "");
  cache.max_snapshot_bytes = static_cast<std::size_t>(
      args.get_int_or("run-cache-max-bytes", static_cast<long long>(cache.max_snapshot_bytes)));
  return serve::MatrixPool(scale, cache);
}

/// Split one `:`-separated fault spec into exactly `expect` (or, when
/// `expect_opt` > 0, optionally `expect_opt`) doubles.
std::vector<double> parse_fault_fields(const std::string& item, std::size_t expect,
                                       std::size_t expect_opt, const char* flag) {
  std::vector<double> fields;
  std::stringstream stream(item);
  std::string field;
  while (std::getline(stream, field, ':')) {
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(field, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    SCC_REQUIRE(used == field.size() && !field.empty(),
                flag << " expects ':'-separated numbers, got '" << item << "'");
    fields.push_back(value);
  }
  SCC_REQUIRE(fields.size() == expect || (expect_opt > 0 && fields.size() == expect_opt),
              flag << " spec '" << item << "' has " << fields.size() << " fields, expected "
                   << expect << (expect_opt > 0 ? " (or more)" : ""));
  return fields;
}

/// --fault-plan=FILE baseline plus --crash / --tile-kill / --brownout /
/// --restart / --flap / --domain-outage lists into the fault plan. The file
/// (a reproducible JSON scenario, see parse_fault_plan_json) loads first;
/// command-line events and rates layer on top of it.
void parse_fault_plan(const CliArgs& args, cluster::FaultPlan& plan) {
  if (args.has("fault-plan")) {
    plan = cluster::load_fault_plan_file(args.get_or("fault-plan", ""));
  }
  const auto each = [](const std::string& list, const auto& fn) {
    std::stringstream stream(list);
    std::string item;
    while (!list.empty() && std::getline(stream, item, ',')) {
      if (!item.empty()) fn(item);
    }
  };
  each(args.get_or("crash", ""), [&](const std::string& item) {
    const auto f = parse_fault_fields(item, 2, 0, "--crash");
    plan.chip_crashes.push_back({static_cast<int>(f[0]), f[1]});
  });
  each(args.get_or("restart", ""), [&](const std::string& item) {
    const auto f = parse_fault_fields(item, 2, 0, "--restart");
    plan.chip_restarts.push_back({static_cast<int>(f[0]), f[1]});
  });
  each(args.get_or("flap", ""), [&](const std::string& item) {
    const auto f = parse_fault_fields(item, 4, 0, "--flap");
    plan.chip_flaps.push_back(
        {static_cast<int>(f[0]), f[1], static_cast<int>(f[2]), f[3]});
  });
  each(args.get_or("tile-kill", ""), [&](const std::string& item) {
    const auto f = parse_fault_fields(item, 3, 0, "--tile-kill");
    plan.tile_kills.push_back({static_cast<int>(f[0]), static_cast<int>(f[1]), f[2]});
  });
  each(args.get_or("brownout", ""), [&](const std::string& item) {
    const auto f = parse_fault_fields(item, 4, 5, "--brownout");
    cluster::Brownout brownout;
    brownout.chip = static_cast<int>(f[0]);
    brownout.mc = static_cast<int>(f[1]);
    brownout.start_seconds = f[2];
    brownout.duration_seconds = f[3];
    if (f.size() == 5) brownout.derate = f[4];
    plan.brownouts.push_back(brownout);
  });
  each(args.get_or("domain-outage", ""), [&](const std::string& item) {
    const auto f = parse_fault_fields(item, 2, 0, "--domain-outage");
    plan.domain_outages.push_back({static_cast<int>(f[0]), f[1]});
  });
  each(args.get_or("bad-dram", ""), [&](const std::string& item) {
    const auto f = parse_fault_fields(item, 2, 3, "--bad-dram");
    cluster::BadDram bad;
    bad.chip = static_cast<int>(f[0]);
    bad.rate = f[1];
    if (f.size() == 3) bad.sticky_rate = f[2];
    SCC_REQUIRE(bad.rate >= 0.0 && bad.rate <= 1.0 && bad.sticky_rate >= 0.0 &&
                    bad.sticky_rate <= 1.0,
                "--bad-dram CHIP:RATE[:STICKY] rates must be probabilities in [0, 1], got '"
                    << item << "'");
    plan.bad_dram.push_back(bad);
  });
  plan.sdc_rate = args.get_double_or("sdc-rate", plan.sdc_rate);
  plan.sdc_sticky_rate = args.get_double_or("sdc-sticky", plan.sdc_sticky_rate);
  plan.chips_per_domain =
      static_cast<int>(args.get_int_or("chips-per-domain", plan.chips_per_domain));
  plan.restart_downtime_seconds =
      args.get_double_or("restart-downtime", plan.restart_downtime_seconds);
  plan.crash_rate = args.get_double_or("crash-rate", plan.crash_rate);
  plan.crash_horizon_seconds = args.get_double_or("crash-horizon", plan.crash_horizon_seconds);
  plan.job_failure_rate = args.get_double_or("job-failure-rate", plan.job_failure_rate);
  if (args.has("fault-seed")) {
    plan.seed = parse_seed(args.get_or("fault-seed", ""));
  } else if (!args.has("fault-plan")) {
    plan.seed = seed_option(args, plan.seed);
  }
}

}  // namespace

int cmd_generate(const CliArgs& args, std::ostream& out) {
  const OutputOptions output = parse_output_options(args);
  const auto matrix = build_family(args);
  const std::string path = args.get_or("out", "matrix.mtx");
  sparse::write_matrix_market_file(path, matrix);
  if (output.json()) {
    obs::Json report = obs::report_skeleton(obs::kKindAnalysis);
    report.set("command", "generate");
    report.set("out", path);
    report.set("rows", matrix.rows());
    report.set("cols", matrix.cols());
    report.set("nnz", matrix.nnz());
    write_json_report(output, report, out);
    return 0;
  }
  out << "wrote " << path << ": " << matrix.rows() << " rows, " << matrix.nnz()
      << " nonzeros\n";
  return 0;
}

int cmd_testbed(const CliArgs& args, std::ostream& out) {
  const OutputOptions output = parse_output_options(args);
  const int id = static_cast<int>(args.get_int_or("id", 1));
  const auto entry = testbed::build_entry(id, testbed::suite_scale_from_env());
  const std::string path = args.get_or("out", entry.name + ".mtx");
  sparse::write_matrix_market_file(path, entry.matrix);
  if (output.json()) {
    obs::Json report = obs::report_skeleton(obs::kKindAnalysis);
    report.set("command", "testbed");
    report.set("id", id);
    report.set("name", entry.name);
    report.set("family", entry.family);
    report.set("out", path);
    report.set("rows", entry.matrix.rows());
    report.set("nnz", entry.matrix.nnz());
    write_json_report(output, report, out);
    return 0;
  }
  out << "wrote " << path << " (#" << id << " " << entry.name << ", " << entry.family << "): "
      << entry.matrix.rows() << " rows, " << entry.matrix.nnz() << " nonzeros\n";
  return 0;
}

int cmd_analyze(const CliArgs& args, std::ostream& out) {
  const auto m = load_input(args);
  const auto stats = sparse::row_stats(m);
  Table t("matrix analysis");
  t.set_header({"property", "value"});
  t.add_row({"rows", Table::integer(m.rows())});
  t.add_row({"cols", Table::integer(m.cols())});
  t.add_row({"nonzeros", Table::integer(m.nnz())});
  t.add_row({"nnz/row mean", Table::num(stats.mean_length, 2)});
  t.add_row({"nnz/row min/max",
             Table::integer(stats.min_length) + "/" + Table::integer(stats.max_length)});
  t.add_row({"empty rows", Table::num(stats.empty_fraction * 100.0, 1) + "%"});
  t.add_row({"working set",
             Table::num(static_cast<double>(sparse::working_set_bytes(m)) / 1048576.0, 2) +
                 " MB"});
  t.add_row({"bandwidth", Table::integer(sparse::bandwidth(m))});
  t.add_row({"x line reuse", Table::num(sparse::x_line_reuse_fraction(m), 3)});
  const OutputOptions output = parse_output_options(args);
  if (output.json()) {
    obs::Json report = obs::report_skeleton(obs::kKindAnalysis);
    report.set("command", "analyze");
    obs::Json tables = obs::Json::array();
    tables.push_back(obs::table_json(t, "analysis"));
    report.set("tables", std::move(tables));
    write_json_report(output, report, out);
    return 0;
  }
  t.print(out);
  return 0;
}

int cmd_simulate(const CliArgs& args, std::ostream& out) {
  const OutputOptions output = parse_output_options(args);
  const auto m = load_input(args);
  sim::EngineConfig cfg;
  cfg.freq = conf_from(args);
  const sim::Engine engine(cfg);
  const int cores = static_cast<int>(args.get_int_or("cores", 24));
  const auto policy = mapping_from(args);
  const auto format = format_from(args);

  obs::Recorder recorder;
  sim::RunSpec spec;
  spec.ue_count = cores;
  spec.policy = policy;
  spec.format = format;
  spec.verify = verify_mode_from(args);
  spec.sdc = sdc_plan_from(args);
  spec.sdc_site = static_cast<std::uint64_t>(args.get_int_or("sdc-site", 0));
  if (output.json() || !output.trace_path.empty()) spec.recorder = &recorder;
  const auto r = engine.run(m, spec);
  write_trace(output, recorder);

  if (output.json()) {
    write_json_report(output, sim::run_report_json(engine, spec, r, spec.recorder), out);
    return 0;
  }

  Table t("simulated SCC run");
  t.set_header({"property", "value"});
  t.add_row({"configuration", cfg.freq.describe()});
  t.add_row({"cores / mapping",
             Table::integer(cores) + " / " + chip::to_string(policy)});
  t.add_row({"format", sim::to_string(format)});
  t.add_row({"time", Table::num(r.seconds * 1e3, 3) + " ms"});
  t.add_row({"performance", Table::num(r.mflops(), 1) + " MFLOPS/s"});
  t.add_row({"bound by", r.bandwidth_bound ? "memory bandwidth" : "slowest core"});
  if (spec.verify != integrity::VerifyMode::kOff || !spec.sdc.empty()) {
    t.add_row({"verify / outcome", std::string(integrity::to_string(r.verify)) + " / " +
                                       integrity::to_string(r.outcome)});
    t.add_row({"verify overhead", Table::num(r.verify_seconds * 1e3, 3) + " ms, " +
                                      Table::integer(r.verify_attempts) + " attempt(s)"});
  }
  t.add_row({"mesh hot link",
             Table::num(static_cast<double>(r.mesh.max_link_bytes) / 1048576.0, 2) + " MB"});
  t.print(out);
  return 0;
}

int cmd_convert(const CliArgs& args, std::ostream& out) {
  const OutputOptions output = parse_output_options(args);
  auto m = load_input(args);
  index_t bandwidth_before = 0;
  const bool rcm = args.get_bool_or("rcm", false);
  if (rcm) {
    const auto perm = sparse::reverse_cuthill_mckee(m);
    bandwidth_before = sparse::bandwidth(m);
    m = m.permute_symmetric(perm);
    if (!output.json()) {
      out << "RCM: bandwidth " << bandwidth_before << " -> " << sparse::bandwidth(m) << '\n';
    }
  }
  const std::string path = args.get_or("out", "converted.mtx");
  sparse::write_matrix_market_file(path, m);
  if (output.json()) {
    obs::Json report = obs::report_skeleton(obs::kKindAnalysis);
    report.set("command", "convert");
    report.set("out", path);
    report.set("rcm", rcm);
    if (rcm) report.set("bandwidth_before", bandwidth_before);
    report.set("bandwidth", sparse::bandwidth(m));
    write_json_report(output, report, out);
    return 0;
  }
  out << "wrote " << path << '\n';
  return 0;
}

int cmd_resilience(const CliArgs& args, std::ostream& out) {
  const OutputOptions output = parse_output_options(args);
  const auto m = (args.has("matrix") || args.has("id")) ? load_input(args) : build_family(args);
  const int ues = static_cast<int>(args.get_int_or("ues", 8));

  fault::Plan plan;
  // --fault-seed keeps its historical meaning; the shared --seed flag is the
  // fallback so one flag reproduces a whole pipeline of commands.
  plan.seed = args.has("fault-seed") ? parse_seed(args.get_or("fault-seed", ""))
                                     : seed_option(args, 0x5cc);
  const auto kill_op = static_cast<std::uint64_t>(args.get_int_or("kill-op", 4));
  for (const int rank : parse_int_list(args.get_or("kill-ranks", ""), "--kill-ranks")) {
    SCC_REQUIRE(rank > 0 && rank < ues,
                "--kill-ranks entries must be survivable worker ranks (1.." << ues - 1 << ")");
    plan.kills.push_back({rank, kill_op});
  }
  plan.transient_rate = args.get_double_or("transient-rate", 0.0);
  plan.drop_rate = args.get_double_or("drop-rate", 0.0);
  plan.corrupt_rate = args.get_double_or("corrupt-rate", 0.0);
  plan.delay_rate = args.get_double_or("delay-rate", 0.0);
  plan.delay_seconds = args.get_double_or("delay-seconds", 0.0005);
  plan.mem_corrupt_rate = args.get_double_or("mem-corrupt-rate", 0.0);
  SCC_REQUIRE(plan.mem_corrupt_rate >= 0.0 && plan.mem_corrupt_rate <= 1.0,
              "--mem-corrupt-rate must be a probability in [0, 1], got "
                  << plan.mem_corrupt_rate);
  {
    // --mem-corrupt=RANK:REGION:ELEMENT:BIT,... deterministic bit flips.
    std::stringstream list(args.get_or("mem-corrupt", ""));
    std::string item;
    const auto parse_field = [](const std::string& field, const std::string& spec_text,
                                const char* what) -> long long {
      std::size_t used = 0;
      long long value = -1;
      try {
        value = std::stoll(field, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      SCC_REQUIRE(used == field.size() && !field.empty(),
                  "--mem-corrupt " << what << " must be an integer in '" << spec_text
                                   << "' (expected RANK:REGION:ELEMENT:BIT, e.g. 1:val:100:40)");
      return value;
    };
    while (std::getline(list, item, ',')) {
      if (item.empty()) continue;
      std::stringstream stream(item);
      std::string rank_text;
      std::string region_text;
      std::string element_text;
      std::string bit_text;
      const bool shape = static_cast<bool>(std::getline(stream, rank_text, ':')) &&
                         static_cast<bool>(std::getline(stream, region_text, ':')) &&
                         static_cast<bool>(std::getline(stream, element_text, ':')) &&
                         static_cast<bool>(std::getline(stream, bit_text));
      SCC_REQUIRE(shape && stream.eof(),
                  "--mem-corrupt expects RANK:REGION:ELEMENT:BIT (e.g. 1:val:100:40), got '"
                      << item << "'");
      fault::Plan::MemCorrupt corrupt;
      corrupt.rank = static_cast<int>(parse_field(rank_text, item, "RANK"));
      corrupt.region = fault::parse_mem_region(region_text);
      corrupt.element = static_cast<std::uint64_t>(parse_field(element_text, item, "ELEMENT"));
      corrupt.bit = static_cast<int>(parse_field(bit_text, item, "BIT"));
      SCC_REQUIRE(corrupt.rank >= 0 && corrupt.rank < ues,
                  "--mem-corrupt rank " << corrupt.rank << " out of range 0.." << ues - 1);
      SCC_REQUIRE(corrupt.bit >= 0 && corrupt.bit <= 63,
                  "--mem-corrupt bit " << corrupt.bit << " must be 0..63");
      plan.mem_corruptions.push_back(corrupt);
    }
  }

  obs::Recorder recorder;
  const bool observe = output.json() || !output.trace_path.empty();

  rcce::RuntimeOptions options;
  options.watchdog_timeout_seconds = args.get_double_or("timeout", 2.0);
  options.injector = std::make_shared<fault::Injector>(plan);
  if (observe) options.recorder = &recorder;

  std::vector<real_t> x(static_cast<std::size_t>(m.cols()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::cos(static_cast<double>(i) * 0.25);
  }

  const auto run = spmv::rcce_spmv(m, x, ues, options);
  const auto reference = sparse::dense_reference_spmv(m, x);
  double max_error = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    max_error = std::max(max_error, std::abs(run.y[i] - reference[i]));
  }
  const bool correct = max_error <= 1e-9;

  // Timing-model counterpart: the run schema's numbers come from the engine,
  // degraded by whichever UEs the fault plan actually killed.
  const sim::Engine engine;
  sim::RunSpec spec;
  spec.ue_count = ues;
  spec.policy = chip::MappingPolicy::kDistanceReduction;
  spec.dead_ranks = run.report.dead_ues;
  if (observe) spec.recorder = &recorder;
  const auto model = engine.run(m, spec);
  write_trace(output, recorder);

  if (output.json()) {
    obs::Json report =
        sim::run_report_json(engine, spec, model, spec.recorder, &run.report.fault_log);
    obs::Json res = obs::Json::object();
    res.set("ues", ues);
    obs::Json dead = obs::Json::array();
    for (int rank : run.report.dead_ues) dead.push_back(obs::Json(rank));
    res.set("dead_ues", std::move(dead));
    res.set("max_error", max_error);
    res.set("correct", correct);
    res.set("messages_sent", run.report.comm.messages_sent);
    res.set("bytes_sent", run.report.comm.bytes_sent);
    res.set("retries", run.report.comm.retries);
    res.set("timeouts", run.report.comm.timeouts);
    res.set("barrier_wait_seconds", run.report.comm.barrier_wait_seconds);
    report.set("resilience", std::move(res));
    write_json_report(output, report, out);
    return correct ? 0 : 1;
  }

  const auto& log = run.report.fault_log;
  Table t("resilience report");
  t.set_header({"property", "value"});
  t.add_row({"matrix", Table::integer(m.rows()) + " rows, " + Table::integer(m.nnz()) + " nnz"});
  t.add_row({"UEs / watchdog",
             Table::integer(ues) + " / " + Table::num(options.watchdog_timeout_seconds, 2) + " s"});
  const auto events = [&log](fault::EventType type) {
    return Table::integer(static_cast<long long>(fault::count(log, type)));
  };
  t.add_row({"fault seed", Table::integer(static_cast<long long>(plan.seed))});
  t.add_row({"UEs killed", Table::integer(static_cast<long long>(run.report.dead_ues.size()))});
  t.add_row({"transfer drops", events(fault::EventType::kTransferDrop)});
  t.add_row({"transfer corruptions", events(fault::EventType::kTransferCorrupt)});
  t.add_row({"memory corruptions", events(fault::EventType::kMemCorrupt)});
  t.add_row({"transient retries", events(fault::EventType::kRetry)});
  t.add_row({"straggler delays", events(fault::EventType::kDelay)});
  t.add_row({"watchdog timeouts", events(fault::EventType::kTimeout)});
  t.add_row({"repartitions", events(fault::EventType::kRepartition)});
  t.add_row({"max |y - y_ref|", Table::num(max_error, 12)});
  t.add_row({"product", correct ? "recovered correctly" : "WRONG"});
  t.print(out);

  if (args.get_bool_or("log", false)) {
    out << '\n';
    for (const auto& event : log) out << "  " << fault::describe(event) << '\n';
  }

  if (!run.report.dead_ues.empty()) {
    sim::RunSpec healthy_spec;
    healthy_spec.ue_count = ues;
    healthy_spec.policy = chip::MappingPolicy::kDistanceReduction;
    const auto healthy = engine.run(m, healthy_spec);
    out << '\n';
    Table impact("timing-model impact (Section V machine)");
    impact.set_header({"property", "value"});
    impact.add_row({"healthy GFLOPS", Table::num(healthy.gflops, 4)});
    impact.add_row({"degraded GFLOPS", Table::num(model.gflops, 4)});
    impact.add_row({"recovery overhead", Table::num(model.recovery_seconds * 1e3, 3) + " ms"});
    impact.add_row(
        {"reshipped CSR", Table::num(static_cast<double>(model.reshipped_bytes) / 1024.0, 1) +
                              " KB"});
    impact.print(out);
  }
  return correct ? 0 : 1;
}

int cmd_serve(const CliArgs& args, std::ostream& out) {
  const OutputOptions output = parse_output_options(args);

  const serve::WorkloadSpec workload = workload_from(args);
  const serve::ServeConfig config = serve_config_from(args);

  const auto requests = serve::generate_workload(workload);
  serve::MatrixPool pool = matrix_pool_from(args);
  serve::Simulator simulator(config, pool);
  obs::Recorder recorder;
  const bool observe = !output.trace_path.empty();
  const auto result = simulator.run(requests, observe ? &recorder : nullptr);
  write_trace(output, recorder);

  if (output.json()) {
    write_json_report(output,
                      serve::serve_report_json(workload, config, result, &simulator.metrics()),
                      out);
    return 0;
  }

  Table t("serving simulation");
  t.set_header({"property", "value"});
  t.add_row({"policy", serve::to_string(config.policy)});
  t.add_row({"offered load", Table::num(workload.offered_rps, 1) + " req/s"});
  t.add_row({"requests", Table::integer(workload.request_count)});
  t.add_row({"completed / rejected",
             Table::integer(result.completed) + " / " + Table::integer(result.rejected)});
  t.add_row({"chip jobs", Table::integer(static_cast<long long>(result.jobs.size()))});
  t.add_row({"makespan", Table::num(result.makespan_seconds, 3) + " s"});
  t.add_row({"throughput", Table::num(result.throughput_rps, 1) + " req/s"});
  t.add_row({"latency p50/p95/p99",
             Table::num(result.latency_total.p50 * 1e3, 2) + " / " +
                 Table::num(result.latency_total.p95 * 1e3, 2) + " / " +
                 Table::num(result.latency_total.p99 * 1e3, 2) + " ms"});
  t.add_row({"SLO violations", Table::integer(result.slo_violations)});
  t.add_row({"max queue depth", Table::integer(result.max_queue_depth)});
  if (config.verify != integrity::VerifyMode::kOff || result.sdc_corrupted > 0) {
    t.add_row({"verify mode", integrity::to_string(config.verify)});
    t.add_row({"SDC corrupted / retried / corrected / escapes",
               Table::integer(result.sdc_corrupted) + " / " +
                   Table::integer(result.sdc_retries) + " / " +
                   Table::integer(result.sdc_corrected) + " / " +
                   Table::integer(result.sdc_escapes)});
  }
  t.print(out);
  return 0;
}

int cmd_cluster(const CliArgs& args, std::ostream& out) {
  const OutputOptions output = parse_output_options(args);

  const serve::WorkloadSpec workload = workload_from(args);
  cluster::ClusterConfig config;
  config.chip_count = static_cast<int>(args.get_int_or("chips", config.chip_count));
  config.chip = serve_config_from(args);
  config.failover = args.get_bool_or("failover", config.failover);
  config.retry.max_attempts =
      static_cast<int>(args.get_int_or("retries", config.retry.max_attempts));
  config.hedge.enabled = args.get_bool_or("hedge", config.hedge.enabled);
  config.hedge.delay_seconds = args.get_double_or("hedge-delay", config.hedge.delay_seconds);
  config.placement.replicas =
      static_cast<int>(args.get_int_or("replicas", config.placement.replicas));
  config.placement.reship_bandwidth_fraction =
      args.get_double_or("reship-bw", config.placement.reship_bandwidth_fraction);
  config.placement.warmup_runs =
      static_cast<int>(args.get_int_or("warmup-runs", config.placement.warmup_runs));
  config.quarantine_threshold = static_cast<int>(
      args.get_int_or("quarantine-threshold", config.quarantine_threshold));
  SCC_REQUIRE(config.quarantine_threshold >= 0,
              "--quarantine-threshold must be >= 0 (0 disables quarantine)");
  parse_fault_plan(args, config.faults);

  const auto requests = serve::generate_workload(workload);
  serve::MatrixPool pool = matrix_pool_from(args);
  cluster::ClusterSimulator simulator(config, pool);
  obs::Recorder recorder;
  const bool observe = !output.trace_path.empty();
  const auto result = simulator.run(requests, observe ? &recorder : nullptr);
  write_trace(output, recorder);

  if (output.json()) {
    write_json_report(
        output, cluster::cluster_report_json(workload, config, result, &simulator.metrics()),
        out);
    return 0;
  }

  Table t("cluster serving simulation");
  t.set_header({"property", "value"});
  t.add_row({"chips / failover",
             Table::integer(config.chip_count) + " / " + (config.failover ? "on" : "off")});
  t.add_row({"policy", serve::to_string(config.chip.policy)});
  t.add_row({"offered load", Table::num(workload.offered_rps, 1) + " req/s"});
  t.add_row({"requests", Table::integer(workload.request_count)});
  t.add_row({"completed / rejected / dead-lettered",
             Table::integer(result.completed) + " / " + Table::integer(result.rejected) +
                 " / " + Table::integer(result.dead_lettered)});
  t.add_row({"availability", Table::num(result.availability * 100.0, 2) + "%"});
  t.add_row({"retries / failovers", Table::integer(result.retries) + " / " +
                                        Table::integer(result.failovers)});
  t.add_row({"hedges / wins",
             Table::integer(result.hedges) + " / " + Table::integer(result.hedge_wins)});
  t.add_row({"chip crashes / tile kills / brownouts",
             Table::integer(result.chip_crashes) + " / " + Table::integer(result.tile_kills) +
                 " / " + Table::integer(result.brownouts)});
  t.add_row({"restarts / rejoins", Table::integer(result.restarts) + " / " +
                                       Table::integer(result.rejoins)});
  t.add_row({"reships / bytes / cold runs",
             Table::integer(result.reships) + " / " +
                 Table::num(result.reship_bytes / 1024.0, 1) + " KB / " +
                 Table::integer(result.cold_runs)});
  t.add_row({"breaker trips", Table::integer(result.breaker_trips)});
  if (config.chip.verify != integrity::VerifyMode::kOff || result.sdc_corrupted > 0) {
    t.add_row({"verify mode", integrity::to_string(config.chip.verify)});
    t.add_row({"SDC detected / corrected / unrecoverable / escapes",
               Table::integer(result.sdc_detected) + " / " +
                   Table::integer(result.sdc_corrected) + " / " +
                   Table::integer(result.sdc_unrecoverable) + " / " +
                   Table::integer(result.sdc_escapes)});
    t.add_row({"quarantined chips", Table::integer(result.quarantines)});
  }
  t.add_row({"makespan", Table::num(result.makespan_seconds, 3) + " s"});
  t.add_row({"throughput", Table::num(result.throughput_rps, 1) + " req/s"});
  t.add_row({"latency p50/p95/p99",
             Table::num(result.latency_total.p50 * 1e3, 2) + " / " +
                 Table::num(result.latency_total.p95 * 1e3, 2) + " / " +
                 Table::num(result.latency_total.p99 * 1e3, 2) + " ms"});
  t.print(out);

  if (args.get_bool_or("log", false) && !result.log.empty()) {
    out << '\n';
    for (const auto& event : result.log) out << "  " << cluster::describe(event) << '\n';
  }
  return 0;
}

int cmd_autotune(const CliArgs& args, std::ostream& out) {
  const OutputOptions output = parse_output_options(args);

  // Matrices to tune: --matrix FILE, --id K, or --mix 26,27 (defaults to
  // the serving workload's default mix).
  std::vector<int> ids;
  if (!args.has("matrix")) {
    if (args.has("id")) {
      ids = {static_cast<int>(args.get_int_or("id", 1))};
    } else if (const auto mix = args.get("mix")) {
      ids = parse_int_list(*mix, "--mix");
    } else {
      ids = serve::WorkloadSpec{}.matrix_mix;
    }
  }

  serve::MatrixPool pool = matrix_pool_from(args);
  const tune::AutotuneConfig tuning = tuning_config_from(args);
  sim::EngineConfig engine;
  engine.freq = conf_from(args);
  tune::Autotuner tuner(engine, tuning, pool.tuning_cache(tuning.cache), pool.run_cache());

  if (args.has("matrix")) {
    tuner.decide(load_input(args));
  }
  for (const int id : ids) {
    tuner.decide(pool.entry(id).matrix, id);
  }

  const tune::Autotuner::Counters counters = tuner.counters();
  if (output.json()) {
    obs::Json report = obs::report_skeleton(obs::kKindAutotune);
    obs::Json config_json = obs::Json::object();
    obs::Json formats = obs::Json::array();
    for (const sim::StorageFormat format : tuning.formats) {
      formats.push_back(sim::to_string(format));
    }
    config_json.set("formats", std::move(formats));
    config_json.set("try_reorder", tuning.try_reorder);
    obs::Json core_counts = obs::Json::array();
    for (const int cores : tuning.core_counts) core_counts.push_back(cores);
    config_json.set("core_counts", std::move(core_counts));
    obs::Json mappings = obs::Json::array();
    for (const chip::MappingPolicy mapping : tuning.mappings) {
      mappings.push_back(chip::to_string(mapping));
    }
    config_json.set("mappings", std::move(mappings));
    config_json.set("feature_fastpath", tuning.feature_fastpath);
    config_json.set("core_time_weight", tuning.core_time_weight);
    report.set("config", std::move(config_json));

    // Reuse the serving report's decision rendering for the shared shape.
    serve::TuningSummary summary;
    summary.enabled = true;
    summary.cache_hits = counters.cache_hits;
    summary.predicted = counters.predicted;
    summary.explored = counters.explored;
    summary.explore_runs = counters.explore_runs;
    summary.explore_seconds = counters.explore_seconds;
    summary.decisions = tuner.log();
    report.set("decisions", serve::tuning_summary_json(summary).at("decisions"));

    obs::Json result = obs::Json::object();
    result.set("cache_hits", counters.cache_hits);
    result.set("predicted", counters.predicted);
    result.set("explored", counters.explored);
    result.set("explore_runs", counters.explore_runs);
    result.set("explore_seconds", counters.explore_seconds);
    report.set("result", std::move(result));
    write_json_report(output, report, out);
    return 0;
  }

  Table t("autotuned storage plans");
  t.set_header({"matrix", "format", "reorder", "cores", "mapping", "modeled ms",
                "csr ms", "speedup", "source"});
  for (const tune::DecisionRecord& record : tuner.log()) {
    const tune::TuningDecision& decision = record.decision;
    const double speedup = decision.modeled_seconds > 0.0
                               ? decision.baseline_seconds / decision.modeled_seconds
                               : 1.0;
    t.add_row({record.matrix_id >= 0 ? Table::integer(record.matrix_id) : std::string("-"),
               sim::to_string(decision.choice.format),
               sim::to_string(decision.choice.reorder),
               Table::integer(decision.choice.ue_count),
               chip::to_string(decision.choice.policy),
               Table::num(decision.modeled_seconds * 1e3, 3),
               Table::num(decision.baseline_seconds * 1e3, 3), Table::num(speedup, 2),
               decision.predicted ? "predicted" : "explored"});
  }
  t.print(out);
  out << "explored " << counters.explored << ", predicted " << counters.predicted
      << ", cache hits " << counters.cache_hits << ", engine runs "
      << counters.explore_runs << '\n';
  return 0;
}

int cmd_report(const CliArgs& args, std::ostream& out) {
  const OutputOptions output = parse_output_options(args);
  const auto& positional = args.positional();  // positional[0] == "report"
  SCC_REQUIRE(positional.size() >= 2, "report needs at least one JSON file");

  struct Source {
    std::string file;
    obs::Json doc;
  };
  std::vector<Source> sources;
  for (std::size_t i = 1; i < positional.size(); ++i) {
    std::ifstream file(positional[i]);
    SCC_REQUIRE(file.good(), "cannot open '" << positional[i] << "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    obs::Json doc = obs::Json::parse(buffer.str());
    const auto problems = obs::validate_report(doc);
    SCC_REQUIRE(problems.empty(), "'" << positional[i]
                                      << "' failed schema validation: " << problems.front());
    sources.push_back({positional[i], std::move(doc)});
  }

  // Comparison across runs: the first run report is the baseline for the
  // relative-time column. Bench reports interleave with their pass/fail.
  // Lookups go through find() with placeholder fallbacks rather than at():
  // a report from a newer schema revision (extra sections, extra keys) must
  // degrade to "-" cells, not abort the aggregation.
  const auto find_number = [](const obs::Json& parent, const char* key,
                              double fallback) -> double {
    const obs::Json* value = parent.find(key);
    return value != nullptr && value->is_number() ? value->as_double() : fallback;
  };
  double baseline_seconds = 0.0;
  obs::Json rows_json = obs::Json::array();
  Table t("report comparison");
  t.set_header({"file", "kind", "cores", "time [ms]", "MFLOPS/s", "rel", "faults", "ok"});
  for (const Source& source : sources) {
    const obs::Json* kind_json = source.doc.find("kind");
    const std::string kind =
        kind_json != nullptr && kind_json->is_string() ? kind_json->as_string() : "?";
    obs::Json summary = obs::Json::object();
    summary.set("file", source.file);
    summary.set("kind", kind);
    const obs::Json* result = source.doc.find("result");
    if (kind == obs::kKindRun && result != nullptr && result->is_object()) {
      const double seconds = find_number(*result, "seconds", 0.0);
      if (baseline_seconds == 0.0) baseline_seconds = seconds;
      const obs::Json* fault_log = source.doc.find("fault_log");
      const std::size_t faults = fault_log != nullptr ? fault_log->size() : 0;
      const obs::Json* run = source.doc.find("run");
      const obs::Json* cores_json = run != nullptr ? run->find("cores") : nullptr;
      const auto cores =
          static_cast<long long>(cores_json != nullptr ? cores_json->size() : 0);
      t.add_row({source.file, kind, Table::integer(cores), Table::num(seconds * 1e3, 3),
                 Table::num(find_number(*result, "gflops", 0.0) * 1000.0, 1),
                 baseline_seconds > 0.0 ? Table::num(seconds / baseline_seconds, 2) + "x" : "-",
                 Table::integer(static_cast<long long>(faults)), "-"});
      summary.set("cores", cores);
      summary.set("seconds", seconds);
      summary.set("gflops", find_number(*result, "gflops", 0.0));
      summary.set("relative_seconds",
                  baseline_seconds > 0.0 ? seconds / baseline_seconds : 1.0);
      summary.set("faults", faults);
    } else if (kind == obs::kKindServe && result != nullptr && result->is_object()) {
      const double makespan = find_number(*result, "makespan_seconds", 0.0);
      const double violations = find_number(*result, "slo_violations", 0.0);
      t.add_row({source.file, kind, "-", Table::num(makespan * 1e3, 3), "-", "-", "-",
                 violations == 0.0 ? "yes" : "NO"});
      summary.set("makespan_seconds", makespan);
      summary.set("throughput_rps", find_number(*result, "throughput_rps", 0.0));
      summary.set("completed", find_number(*result, "completed", 0.0));
      summary.set("rejected", find_number(*result, "rejected", 0.0));
      summary.set("slo_violations", violations);
    } else if (kind == obs::kKindBench) {
      const obs::Json* ok_json = source.doc.find("ok");
      const bool ok = ok_json != nullptr && ok_json->is_bool() && ok_json->as_bool();
      t.add_row({source.file, kind, "-", "-", "-", "-", "-", ok ? "yes" : "NO"});
      const obs::Json* name = source.doc.find("name");
      summary.set("name", name != nullptr && name->is_string() ? name->as_string() : "?");
      summary.set("ok", ok);
    } else {
      t.add_row({source.file, kind, "-", "-", "-", "-", "-", "-"});
    }
    rows_json.push_back(std::move(summary));
  }

  if (output.json()) {
    obs::Json report = obs::report_skeleton(obs::kKindReport);
    report.set("sources", std::move(rows_json));
    write_json_report(output, report, out);
    return 0;
  }
  t.print(out);
  return 0;
}

int run_cli(const CliArgs& args, std::ostream& out, std::ostream& err) {
  static constexpr const char* kUsage =
      "usage: scc-spmv <command> [options]\n"
      "  generate  --family F --n N [--seed S] --out FILE      synthesize a matrix\n"
      "  testbed   --id 1..32 [--out FILE]                     export a Table-I stand-in\n"
      "  analyze   --matrix FILE | --id K                      structural report\n"
      "  simulate  --matrix FILE | --id K [--cores C] [--mapping standard|dr|ca]\n"
      "            [--conf 0|1|2] [--format csr|ell|bcsr2|bcsr4|hyb]\n"
      "            [--verify off|detect|correct] [--sdc-rate P --sdc-sticky P]\n"
      "            [--sdc-seed S --sdc-bits MIN:MAX --sdc-site K]\n"
      "  convert   --matrix FILE [--rcm] --out FILE            normalize / reorder\n"
      "  resilience [--matrix FILE | --id K | --family F] [--ues U]\n"
      "            [--kill-ranks 1,3 --kill-op N] [--transient-rate P] [--drop-rate P]\n"
      "            [--corrupt-rate P] [--delay-rate P] [--timeout S] [--fault-seed S]\n"
      "            [--mem-corrupt RANK:REGION:ELEMENT:BIT,...] [--mem-corrupt-rate P]\n"
      "            (REGION: val|col|ptr|x|partial) [--log]\n"
      "  serve     [--policy fifo|quadrants|matrix-aware] [--load RPS] [--requests N]\n"
      "            [--mix 19,22,27,30] [--interactive-fraction P] [--batch on|off]\n"
      "            [--batch-max K] [--queue-depth D] [--reserve R]\n"
      "            [--slo-interactive S] [--slo-batch S] [--conf 0|1|2]\n"
      "            [--verify off|detect|correct] [--sdc-rate P --sdc-sticky P\n"
      "            --sdc-seed S --sdc-bits MIN:MAX] (per-job SDC injection)\n"
      "  cluster   [--chips N] [--failover on|off] [--crash C:T,...]\n"
      "            [--tile-kill C:CORE:T,...] [--brownout C:MC:T0:DUR[:DERATE],...]\n"
      "            [--restart C:T,...] [--restart-downtime S] [--flap C:T0:CYCLES:PERIOD,...]\n"
      "            [--domain-outage D:T,...] [--chips-per-domain N]\n"
      "            [--fault-plan FILE.json] (seeded scenario; flags layer on top)\n"
      "            [--replicas R] [--reship-bw F] [--warmup-runs K]\n"
      "            [--crash-rate P --crash-horizon S] [--job-failure-rate P]\n"
      "            [--verify off|detect|correct] [--sdc-rate P --sdc-sticky P]\n"
      "            [--bad-dram CHIP:RATE[:STICKY],...] [--quarantine-threshold N]\n"
      "            [--retries K] [--hedge on|off --hedge-delay S] [--fault-seed S]\n"
      "            [--log] plus every serve workload/config flag\n"
      "  autotune  [--id K | --matrix FILE | --mix 26,27] [--conf 0|1|2]\n"
      "            explore format x reorder x cores x mapping per matrix and\n"
      "            pin the winner in the tuning cache\n"
      "  report    FILE.json [FILE.json ...]                   compare JSON reports\n"
      "every command also accepts --json[=FILE] (schema-versioned JSON output),\n"
      "--trace=FILE (JSON-lines span trace, where instrumented), --seed S\n"
      "(decimal or 0x-hex; seeds every randomized path of the command) and\n"
      "--sim-threads N (host threads for the engine's rank replay; overrides\n"
      "SCC_SIM_THREADS, 1 = serial, numbers identical either way); serve and\n"
      "cluster accept --no-run-cache (disable engine-run memoization),\n"
      "--run-cache-capacity N / --run-cache-shards K (size the sharded run\n"
      "cache), --run-cache-file FILE (persist memoized runs across processes\n"
      "via a checksummed snapshot) and --run-cache-max-bytes B (compact the\n"
      "snapshot to its newest generations under B bytes); serve and cluster\n"
      "accept --autotune on|off (tuned dispatch), and autotune/serve/cluster\n"
      "accept --tuning-cache-file FILE / --tuning-cache-capacity N (persist\n"
      "and bound the pinned winners) and --fastpath on|off (feature-based\n"
      "class fast path)\n";
  try {
    if (args.positional().empty()) {
      err << kUsage;
      return 2;
    }
    if (args.has("sim-threads")) {
      const int threads = static_cast<int>(args.get_int_or("sim-threads", 0));
      SCC_REQUIRE(threads >= 1, "--sim-threads must be >= 1");
      common::set_sim_threads(threads);
    }
    const std::string& command = args.positional().front();
    if (command == "generate") return cmd_generate(args, out);
    if (command == "testbed") return cmd_testbed(args, out);
    if (command == "analyze") return cmd_analyze(args, out);
    if (command == "simulate") return cmd_simulate(args, out);
    if (command == "convert") return cmd_convert(args, out);
    if (command == "resilience") return cmd_resilience(args, out);
    if (command == "serve") return cmd_serve(args, out);
    if (command == "cluster") return cmd_cluster(args, out);
    if (command == "autotune") return cmd_autotune(args, out);
    if (command == "report") return cmd_report(args, out);
    err << "unknown command '" << command << "'\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace scc::tools
