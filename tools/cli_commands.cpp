#include "cli_commands.hpp"

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "gen/generators.hpp"
#include "sim/engine.hpp"
#include "sparse/io.hpp"
#include "sparse/properties.hpp"
#include "sparse/reorder.hpp"
#include "testbed/suite.hpp"

namespace scc::tools {

namespace {

sparse::CsrMatrix build_family(const CliArgs& args) {
  const std::string family = args.get_or("family", "banded");
  const auto n = static_cast<index_t>(args.get_int_or("n", 10000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  if (family == "banded") {
    return gen::banded(n, static_cast<index_t>(args.get_int_or("half-bandwidth", 20)),
                       args.get_double_or("fill", 0.4), seed);
  }
  if (family == "stencil2d") {
    const auto side = static_cast<index_t>(args.get_int_or("side", 100));
    return gen::stencil_2d(side, side);
  }
  if (family == "stencil3d") {
    const auto side = static_cast<index_t>(args.get_int_or("side", 22));
    return gen::stencil_3d(side, side, side);
  }
  if (family == "fem") {
    return gen::fem_blocks(static_cast<index_t>(args.get_int_or("blocks", 500)),
                           static_cast<index_t>(args.get_int_or("block-size", 8)),
                           static_cast<index_t>(args.get_int_or("couplings", 3)), seed);
  }
  if (family == "random") {
    return gen::random_uniform(n, static_cast<index_t>(args.get_int_or("row-nnz", 10)), seed);
  }
  if (family == "power-law") {
    return gen::power_law(n, static_cast<index_t>(args.get_int_or("avg-row-nnz", 10)),
                          args.get_double_or("alpha", 1.2), seed);
  }
  if (family == "circuit") {
    return gen::circuit(n, args.get_double_or("extra-per-row", 2.0),
                        args.get_double_or("long-range", 0.4), seed);
  }
  SCC_REQUIRE(false, "unknown family '" << family
                                        << "' (banded|stencil2d|stencil3d|fem|random|"
                                           "power-law|circuit)");
  return {};
}

sparse::CsrMatrix load_input(const CliArgs& args) {
  if (const auto path = args.get("matrix")) {
    return sparse::read_matrix_market_file(*path);
  }
  if (args.has("id")) {
    return testbed::build_entry(static_cast<int>(args.get_int_or("id", 1)),
                                testbed::suite_scale_from_env())
        .matrix;
  }
  SCC_REQUIRE(false, "provide --matrix <file.mtx> or --id <1..32>");
  return {};
}

chip::MappingPolicy mapping_from(const CliArgs& args) {
  const std::string name = args.get_or("mapping", "dr");
  if (name == "standard" || name == "std") return chip::MappingPolicy::kStandard;
  if (name == "dr" || name == "distance-reduction") {
    return chip::MappingPolicy::kDistanceReduction;
  }
  if (name == "ca" || name == "contention-aware") return chip::MappingPolicy::kContentionAware;
  SCC_REQUIRE(false, "unknown mapping '" << name << "' (standard|dr|ca)");
  return chip::MappingPolicy::kStandard;
}

chip::FrequencyConfig conf_from(const CliArgs& args) {
  switch (args.get_int_or("conf", 0)) {
    case 0:
      return chip::FrequencyConfig::conf0();
    case 1:
      return chip::FrequencyConfig::conf1();
    case 2:
      return chip::FrequencyConfig::conf2();
    default:
      SCC_REQUIRE(false, "conf must be 0, 1 or 2");
  }
  return chip::FrequencyConfig::conf0();
}

sim::StorageFormat format_from(const CliArgs& args) {
  const std::string name = args.get_or("format", "csr");
  if (name == "csr") return sim::StorageFormat::kCsr;
  if (name == "ell") return sim::StorageFormat::kEll;
  if (name == "bcsr2") return sim::StorageFormat::kBcsr2;
  if (name == "bcsr4") return sim::StorageFormat::kBcsr4;
  if (name == "hyb") return sim::StorageFormat::kHyb;
  SCC_REQUIRE(false, "unknown format '" << name << "' (csr|ell|bcsr2|bcsr4|hyb)");
  return sim::StorageFormat::kCsr;
}

}  // namespace

int cmd_generate(const CliArgs& args, std::ostream& out) {
  const auto matrix = build_family(args);
  const std::string path = args.get_or("out", "matrix.mtx");
  sparse::write_matrix_market_file(path, matrix);
  out << "wrote " << path << ": " << matrix.rows() << " rows, " << matrix.nnz()
      << " nonzeros\n";
  return 0;
}

int cmd_testbed(const CliArgs& args, std::ostream& out) {
  const int id = static_cast<int>(args.get_int_or("id", 1));
  const auto entry = testbed::build_entry(id, testbed::suite_scale_from_env());
  const std::string path = args.get_or("out", entry.name + ".mtx");
  sparse::write_matrix_market_file(path, entry.matrix);
  out << "wrote " << path << " (#" << id << " " << entry.name << ", " << entry.family << "): "
      << entry.matrix.rows() << " rows, " << entry.matrix.nnz() << " nonzeros\n";
  return 0;
}

int cmd_analyze(const CliArgs& args, std::ostream& out) {
  const auto m = load_input(args);
  const auto stats = sparse::row_stats(m);
  Table t("matrix analysis");
  t.set_header({"property", "value"});
  t.add_row({"rows", Table::integer(m.rows())});
  t.add_row({"cols", Table::integer(m.cols())});
  t.add_row({"nonzeros", Table::integer(m.nnz())});
  t.add_row({"nnz/row mean", Table::num(stats.mean_length, 2)});
  t.add_row({"nnz/row min/max",
             Table::integer(stats.min_length) + "/" + Table::integer(stats.max_length)});
  t.add_row({"empty rows", Table::num(stats.empty_fraction * 100.0, 1) + "%"});
  t.add_row({"working set",
             Table::num(static_cast<double>(sparse::working_set_bytes(m)) / 1048576.0, 2) +
                 " MB"});
  t.add_row({"bandwidth", Table::integer(sparse::bandwidth(m))});
  t.add_row({"x line reuse", Table::num(sparse::x_line_reuse_fraction(m), 3)});
  t.print(out);
  return 0;
}

int cmd_simulate(const CliArgs& args, std::ostream& out) {
  const auto m = load_input(args);
  sim::EngineConfig cfg;
  cfg.freq = conf_from(args);
  const sim::Engine engine(cfg);
  const int cores = static_cast<int>(args.get_int_or("cores", 24));
  const auto policy = mapping_from(args);
  const auto format = format_from(args);
  const auto r = engine.run_format(m, cores, policy, format);

  Table t("simulated SCC run");
  t.set_header({"property", "value"});
  t.add_row({"configuration", cfg.freq.describe()});
  t.add_row({"cores / mapping",
             Table::integer(cores) + " / " + chip::to_string(policy)});
  t.add_row({"format", sim::to_string(format)});
  t.add_row({"time", Table::num(r.seconds * 1e3, 3) + " ms"});
  t.add_row({"performance", Table::num(r.mflops(), 1) + " MFLOPS/s"});
  t.add_row({"bound by", r.bandwidth_bound ? "memory bandwidth" : "slowest core"});
  t.add_row({"mesh hot link",
             Table::num(static_cast<double>(r.mesh.max_link_bytes) / 1048576.0, 2) + " MB"});
  t.print(out);
  return 0;
}

int cmd_convert(const CliArgs& args, std::ostream& out) {
  auto m = load_input(args);
  if (args.get_bool_or("rcm", false)) {
    const auto perm = sparse::reverse_cuthill_mckee(m);
    const auto before = sparse::bandwidth(m);
    m = m.permute_symmetric(perm);
    out << "RCM: bandwidth " << before << " -> " << sparse::bandwidth(m) << '\n';
  }
  const std::string path = args.get_or("out", "converted.mtx");
  sparse::write_matrix_market_file(path, m);
  out << "wrote " << path << '\n';
  return 0;
}

int run_cli(const CliArgs& args, std::ostream& out, std::ostream& err) {
  static constexpr const char* kUsage =
      "usage: scc-spmv <command> [options]\n"
      "  generate  --family F --n N [--seed S] --out FILE      synthesize a matrix\n"
      "  testbed   --id 1..32 [--out FILE]                     export a Table-I stand-in\n"
      "  analyze   --matrix FILE | --id K                      structural report\n"
      "  simulate  --matrix FILE | --id K [--cores C] [--mapping standard|dr|ca]\n"
      "            [--conf 0|1|2] [--format csr|ell|bcsr2|bcsr4|hyb]\n"
      "  convert   --matrix FILE [--rcm] --out FILE            normalize / reorder\n";
  try {
    if (args.positional().empty()) {
      err << kUsage;
      return 2;
    }
    const std::string& command = args.positional().front();
    if (command == "generate") return cmd_generate(args, out);
    if (command == "testbed") return cmd_testbed(args, out);
    if (command == "analyze") return cmd_analyze(args, out);
    if (command == "simulate") return cmd_simulate(args, out);
    if (command == "convert") return cmd_convert(args, out);
    err << "unknown command '" << command << "'\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace scc::tools
