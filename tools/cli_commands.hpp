// Implementation of the `scc-spmv` command-line tool, split from main() so
// every command is unit-testable in-process. Each command takes parsed
// arguments plus the output stream and returns a process exit code.
//
// Commands:
//   generate  -- write a synthetic matrix (any generator family) as .mtx
//   testbed   -- export a Table-I stand-in as .mtx
//   analyze   -- structural + locality report for a matrix
//   simulate  -- run the SCC simulator on a matrix (cores/mapping/conf/format)
//   convert   -- normalize / RCM-reorder a Matrix Market file
//   resilience -- run the fault-injected RCCE SpMV and report the recovery
//   serve     -- multi-tenant serving simulation (admission, co-scheduling)
//   cluster   -- multi-chip cluster serving with injected faults + failover
//   autotune  -- explore format/reorder/cores/mapping per matrix, pin winners
//   report    -- aggregate schema-v1 JSON reports into a comparison table
//
// Every command honours the shared output flags (`--json[=FILE]`,
// `--trace=FILE`) parsed by scc::parse_output_options.
#pragma once

#include <iosfwd>

#include "common/cli.hpp"

namespace scc::tools {

int cmd_generate(const CliArgs& args, std::ostream& out);
int cmd_testbed(const CliArgs& args, std::ostream& out);
int cmd_analyze(const CliArgs& args, std::ostream& out);
int cmd_simulate(const CliArgs& args, std::ostream& out);
int cmd_convert(const CliArgs& args, std::ostream& out);
int cmd_resilience(const CliArgs& args, std::ostream& out);
int cmd_serve(const CliArgs& args, std::ostream& out);
int cmd_cluster(const CliArgs& args, std::ostream& out);
int cmd_autotune(const CliArgs& args, std::ostream& out);
int cmd_report(const CliArgs& args, std::ostream& out);

/// Dispatch on args.positional()[0]; prints usage and returns 2 on unknown
/// or missing command.
int run_cli(const CliArgs& args, std::ostream& out, std::ostream& err);

}  // namespace scc::tools
