// Entry point of the `scc-spmv` command-line tool; all logic lives in
// cli_commands.cpp so it can be tested in-process.
#include <iostream>

#include "cli_commands.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  const scc::CliArgs args(argc, argv);
  return scc::tools::run_cli(args, std::cout, std::cerr);
}
