// scc-json-check: structural validator for the schema-v1 JSON reports
// (docs/OBSERVABILITY.md). Reads every file named on the command line,
// parses it and runs obs::validate_report; problems go to stderr. Exit code
// 0 when every file validates, 1 otherwise. CI's bench-smoke job runs this
// over the BENCH_*.json artifacts.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/report.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: scc-json-check FILE.json [FILE.json ...]\n";
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream file(path);
    if (!file.good()) {
      std::cerr << path << ": cannot open\n";
      ++bad;
      continue;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    try {
      const scc::obs::Json doc = scc::obs::Json::parse(buffer.str());
      const auto problems = scc::obs::validate_report(doc);
      if (problems.empty()) {
        std::cout << path << ": ok (kind " << doc.at("kind").as_string() << ")\n";
      } else {
        for (const std::string& problem : problems) {
          std::cerr << path << ": " << problem << '\n';
        }
        ++bad;
      }
    } catch (const std::exception& e) {
      std::cerr << path << ": " << e.what() << '\n';
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}
